// Package sweep is the distro-scale ingestion harness behind `bside
// sweep`: it walks a directory tree (an extracted container image, a
// /usr partition, a firmware dump), filters to x86-64 ELF executables
// and libraries by magic sniff, and streams every candidate through
// the analyzer with bounded memory — a bounded-queue producer/consumer
// pipeline, so a million-file tree never materializes a path slice —
// emitting one result per binary as it completes plus a rolling fleet
// summary (throughput, warm-hit ratio, latency quantiles,
// failure-phase counts).
//
// With Diff enabled every successfully analyzed binary is also run
// through the cheap syspeek-style linear scanner
// (internal/baseline.Syspeek) and the two answers are compared: a
// scan-resolved syscall number missing from B-Side's set is a
// soundness disagreement worth a human look, while numbers only
// B-Side finds are the expected precision gap of a scanner that
// cannot follow wrappers or stack-carried values.
package sweep

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bside"
	"bside/internal/baseline"
	"bside/internal/elff"
	"bside/internal/metrics"
)

// Options tunes one sweep.
type Options struct {
	// Analyzer runs the per-binary analyses. Required; configure its
	// cache, library dir and worker options before the sweep.
	Analyzer *bside.Analyzer
	// Jobs is the number of concurrent analysis workers (0 =
	// GOMAXPROCS).
	Jobs int
	// QueueDepth bounds the path queue between the tree walker and the
	// workers (0 = 256): the walker blocks instead of buffering a
	// huge tree's worth of paths, keeping memory flat however large
	// the corpus.
	QueueDepth int
	// Diff runs the syspeek-style linear scanner on every analyzed
	// binary and records where the cheap scan and B-Side disagree.
	Diff bool
	// NoMmap opens the diff scanner's images through the copying
	// frontend (the analyzer's own frontend is governed by
	// bside.Options.DisableMmap).
	NoMmap bool
	// OnResult, when set, is invoked once per candidate binary as its
	// analysis completes — completion order, calls serialized. Skipped
	// non-ELF files do not produce results.
	OnResult func(*Result)
	// OnProgress, when set, is invoked with a rolling summary every
	// ProgressEvery completed binaries (serialized with OnResult).
	OnProgress func(*Summary)
	// ProgressEvery is the OnProgress cadence (0 = 64).
	ProgressEvery int
}

// Diff is the per-binary differential record against the linear
// scanner.
type Diff struct {
	// ScanSites and ScanResolved count the scanner's syscall sites
	// seen and resolved.
	ScanSites    int `json:"scan_sites"`
	ScanResolved int `json:"scan_resolved"`
	// ScanOnly lists scan-resolved syscall numbers absent from
	// B-Side's set — soundness disagreements (empty on agreeing
	// binaries; never populated for fail-open analyses, whose
	// effective set is the full table).
	ScanOnly []uint64 `json:"scan_only,omitempty"`
	// BSideOnly counts numbers only B-Side found — the scanner's
	// expected precision gap, recorded for fleet-level trend lines.
	BSideOnly int `json:"bside_only"`
}

// Result is one binary's sweep record — the NDJSON line `bside sweep`
// emits.
type Result struct {
	Path     string   `json:"path"`
	Syscalls []uint64 `json:"syscalls,omitempty"`
	FailOpen bool     `json:"fail_open,omitempty"`
	Wrappers int      `json:"wrappers,omitempty"`
	Cached   bool     `json:"cached,omitempty"`
	// Ms is the per-binary wall clock in milliseconds.
	Ms float64 `json:"ms"`
	// Phase is the failure phase for failed candidates: "open",
	// "analyze", "panic" (the analysis crashed and was contained — the
	// binary is recorded as hostile/broken and the fleet moved on) or
	// "scan". Empty on success.
	Phase string `json:"phase,omitempty"`
	Error string `json:"error,omitempty"`
	Diff  *Diff  `json:"diff,omitempty"`

	// Analysis is the underlying result for library callers (the
	// fuzzer's invariance legs); not serialized.
	Analysis *bside.Analysis `json:"-"`
}

// Summary is the fleet-level rollup.
type Summary struct {
	// Files counts regular files the walker saw; ELFs the subset that
	// passed the x86-64 ELF sniff; Skipped the rest. SkippedArches
	// histograms the skipped subset that is a valid ELF executable or
	// shared object for an unsupported machine (keyed by architecture),
	// so fleet coverage of a mixed-arch tree is visible at a glance.
	Files         int64            `json:"files"`
	ELFs          int64            `json:"elfs"`
	Skipped       int64            `json:"skipped"`
	SkippedArches map[string]int64 `json:"skipped_arches,omitempty"`
	// Analyzed counts successful analyses; Warm the subset served
	// from the persistent cache; Failed the candidates whose analysis
	// (or scan) failed.
	Analyzed int64 `json:"analyzed"`
	Warm     int64 `json:"warm"`
	Failed   int64 `json:"failed"`
	// FailurePhases histograms failures by phase ("walk", "open",
	// "analyze", "panic", "scan").
	FailurePhases  map[string]int64 `json:"failure_phases,omitempty"`
	ElapsedMs      float64          `json:"elapsed_ms"`
	BinariesPerSec float64          `json:"binaries_per_sec"`
	// WarmHitRatio is Warm/Analyzed (0 when nothing analyzed).
	WarmHitRatio float64 `json:"warm_hit_ratio"`
	// PackHits counts cache loads the analyzer served from a
	// memory-mapped cache pack so far (see bside.CacheStats.PackHits);
	// PackBytesMapped gauges the mapped pack bytes. Both zero when no
	// pack is attached.
	PackHits        uint64 `json:"pack_hits,omitempty"`
	PackBytesMapped int64  `json:"pack_bytes_mapped,omitempty"`
	// P50Ms and P99Ms are per-binary latency quantiles from the
	// log2-bucket histogram (upper-bound estimates).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ScanDisagreements counts binaries whose Diff.ScanOnly was
	// non-empty (0 unless Options.Diff).
	ScanDisagreements int64 `json:"scan_disagreements"`
	// Latency is the full per-binary latency distribution.
	Latency metrics.Snapshot `json:"latency"`
}

// state is the shared mutable context of one Run.
type state struct {
	opts     Options
	files    atomic.Int64
	elfs     atomic.Int64
	skipped  atomic.Int64
	analyzed atomic.Int64
	warm     atomic.Int64
	failed   atomic.Int64
	scanDis  atomic.Int64
	hist     metrics.Histogram
	start    time.Time

	mu      sync.Mutex // serializes emits and the phase/arch maps
	phases  map[string]int64
	arches  map[string]int64
	emitted int64
}

func (st *state) fail(phase string) {
	st.failed.Add(1)
	st.mu.Lock()
	st.phases[phase]++
	st.mu.Unlock()
}

// emit delivers one result (and, on cadence, a progress summary) under
// the emit lock.
func (st *state) emit(res *Result) {
	every := st.opts.ProgressEvery
	if every <= 0 {
		every = 64
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.opts.OnResult != nil {
		st.opts.OnResult(res)
	}
	st.emitted++
	if st.opts.OnProgress != nil && st.emitted%int64(every) == 0 {
		st.opts.OnProgress(st.summaryLocked())
	}
}

func (st *state) summaryLocked() *Summary {
	elapsed := time.Since(st.start)
	s := &Summary{
		Files:             st.files.Load(),
		ELFs:              st.elfs.Load(),
		Skipped:           st.skipped.Load(),
		Analyzed:          st.analyzed.Load(),
		Warm:              st.warm.Load(),
		Failed:            st.failed.Load(),
		ElapsedMs:         float64(elapsed.Microseconds()) / 1000,
		ScanDisagreements: st.scanDis.Load(),
		Latency:           st.hist.Snapshot(),
	}
	if len(st.phases) > 0 {
		s.FailurePhases = make(map[string]int64, len(st.phases))
		for k, v := range st.phases {
			s.FailurePhases[k] = v
		}
	}
	if len(st.arches) > 0 {
		s.SkippedArches = make(map[string]int64, len(st.arches))
		for k, v := range st.arches {
			s.SkippedArches[k] = v
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		s.BinariesPerSec = float64(s.Analyzed) / secs
	}
	if s.Analyzed > 0 {
		s.WarmHitRatio = float64(s.Warm) / float64(s.Analyzed)
	}
	if st.opts.Analyzer != nil {
		cs := st.opts.Analyzer.CacheStats()
		s.PackHits = cs.PackHits
		s.PackBytesMapped = cs.PackBytesMapped
	}
	s.P50Ms = float64(s.Latency.Quantile(0.50).Microseconds()) / 1000
	s.P99Ms = float64(s.Latency.Quantile(0.99).Microseconds()) / 1000
	return s
}

// Run sweeps the tree rooted at root. Per-binary failures are recorded
// in their results and the summary, never aborting the sweep; the
// returned error is reserved for systemic failures (an unusable root,
// a missing analyzer, cancellation).
func Run(ctx context.Context, root string, opts Options) (*Summary, error) {
	if opts.Analyzer == nil {
		return nil, fmt.Errorf("sweep: no analyzer configured")
	}
	if _, err := os.Stat(root); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	st := &state{opts: opts, phases: make(map[string]int64), arches: make(map[string]int64), start: time.Now()}

	// Bounded queue: the walker blocks when the workers fall behind,
	// so the in-flight path set never exceeds depth + jobs however
	// large the tree is.
	paths := make(chan string, depth)
	walkErr := make(chan error, 1)
	go func() {
		defer close(paths)
		walkErr <- filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				// An unreadable directory or a vanished file: count and
				// keep walking the rest of the tree.
				st.fail("walk")
				if d != nil && d.IsDir() {
					return fs.SkipDir
				}
				return nil
			}
			// Regular files only: symlinks are skipped to keep one
			// binary one analysis (distro trees alias heavily) and to
			// make cycles impossible.
			if !d.Type().IsRegular() {
				return nil
			}
			st.files.Add(1)
			select {
			case paths <- path:
				return nil
			case <-ctx.Done():
				return fs.SkipAll
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range paths {
				st.sweepOne(ctx, path)
			}
		}()
	}
	wg.Wait()
	if err := <-walkErr; err != nil && err != fs.SkipAll {
		return nil, fmt.Errorf("sweep: walk: %w", err)
	}

	st.mu.Lock()
	sum := st.summaryLocked()
	st.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return sum, fmt.Errorf("sweep: aborted: %w", err)
	}
	return sum, nil
}

// sweepOne takes one regular file from sniff to emitted result. A
// panic anywhere in the per-binary path — the analyzer's own fault
// boundaries should have converted it, so this recover is the sweep
// pool's backstop — is recorded as a "panic" failure for this one
// binary; the worker, and with it the rest of the fleet, keeps moving.
func (st *state) sweepOne(ctx context.Context, path string) {
	defer func() {
		if r := recover(); r != nil {
			st.fail("panic")
			st.emit(&Result{Path: path, Phase: "panic", Error: fmt.Sprintf("analysis panicked: %v", r)})
		}
	}()
	sn, err := sniffELF(path)
	if err != nil {
		st.fail("open")
		st.emit(&Result{Path: path, Phase: "open", Error: err.Error()})
		return
	}
	if !sn.candidate {
		st.skipped.Add(1)
		if sn.arch != "" {
			st.mu.Lock()
			st.arches[sn.arch]++
			st.mu.Unlock()
		}
		return
	}
	st.elfs.Add(1)

	begin := time.Now()
	res, err := st.opts.Analyzer.AnalyzeFileContext(ctx, path)
	elapsed := time.Since(begin)
	st.hist.Observe(elapsed)
	out := &Result{Path: path, Ms: float64(elapsed.Microseconds()) / 1000}
	if err != nil {
		// A contained panic gets its own phase: "analyze" failures are
		// expected fleet noise (unbounded sites, timeouts), a panic is a
		// hostile or bug-triggering binary worth triaging separately.
		if _, isPanic := bside.IsPanic(err); isPanic {
			st.fail("panic")
			out.Phase = "panic"
		} else {
			st.fail("analyze")
			out.Phase = "analyze"
		}
		out.Error = err.Error()
		st.emit(out)
		return
	}
	out.Syscalls = res.Syscalls
	out.FailOpen = res.FailOpen
	out.Wrappers = res.Wrappers
	out.Cached = res.Cached
	out.Analysis = res

	if st.opts.Diff {
		diff, err := st.diffOne(path, res)
		if err != nil {
			st.fail("scan")
			out.Phase, out.Error = "scan", err.Error()
			st.emit(out)
			return
		}
		out.Diff = diff
		if len(diff.ScanOnly) > 0 {
			st.scanDis.Add(1)
		}
	}

	st.analyzed.Add(1)
	if res.Cached {
		st.warm.Add(1)
	}
	st.emit(out)
}

// diffOne runs the linear scanner over the binary and compares. The
// scan opens its own image through the zero-copy frontend (released
// before returning); fail-open analyses compare trivially — their
// effective set is the full table, so nothing the scanner resolves can
// sit outside it.
func (st *state) diffOne(path string, res *bside.Analysis) (*Diff, error) {
	bin, err := elff.OpenBinary(path, st.opts.NoMmap)
	if err != nil {
		return nil, err
	}
	scan := baseline.Syspeek(bin)
	_ = bin.ReleaseImage()

	d := &Diff{ScanSites: scan.SitesTotal, ScanResolved: scan.SitesResolved}
	if !res.FailOpen {
		for _, n := range scan.Syscalls {
			if !res.Has(n) {
				d.ScanOnly = append(d.ScanOnly, n)
			}
		}
		sort.Slice(d.ScanOnly, func(i, j int) bool { return d.ScanOnly[i] < d.ScanOnly[j] })
	}
	scanSet := make(map[uint64]bool, len(scan.Syscalls))
	for _, n := range scan.Syscalls {
		scanSet[n] = true
	}
	for _, n := range res.Syscalls {
		if !scanSet[n] {
			d.BSideOnly++
		}
	}
	return d, nil
}

// sniff is the 64-byte-header classification of one regular file: a
// candidate for analysis, a foreign-architecture ELF worth counting in
// the fleet summary, or neither.
type sniff struct {
	candidate bool
	// arch names the machine of a valid ELF executable/shared object
	// the analyzer does not support ("" otherwise). Distro trees mix
	// multilib and cross-target binaries in; lumping them into the
	// generic skip count (or worse, the failure phases) hides how much
	// of a fleet the x86-64 analyzer actually covered.
	arch string
}

// sniffELF classifies path from its first 64 bytes — the header is all
// it reads, so a distro tree's scripts, docs and data files cost one
// small read each.
func sniffELF(path string) (sniff, error) {
	f, err := os.Open(path)
	if err != nil {
		return sniff{}, err
	}
	defer f.Close()
	var hdr [64]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil && n < 20 {
		// Too short to be an ELF at all; not an error, just not a
		// candidate.
		return sniff{}, nil
	}
	if hdr[0] != 0x7f || hdr[1] != 'E' || hdr[2] != 'L' || hdr[3] != 'F' {
		return sniff{}, nil
	}
	etype := binary.LittleEndian.Uint16(hdr[16:])
	machine := binary.LittleEndian.Uint16(hdr[18:])
	const (
		etExec  = 2
		etDyn   = 3
		emX8664 = 62
	)
	if etype != etExec && etype != etDyn {
		return sniff{}, nil // relocatable objects, core dumps
	}
	if hdr[4] != 2 || hdr[5] != 1 || machine != emX8664 {
		// A real executable or shared object for a machine (or class)
		// this analyzer does not handle: count it by architecture.
		return sniff{arch: archName(hdr[4], machine)}, nil
	}
	return sniff{candidate: true}, nil
}

// archName renders an ELF (class, e_machine) pair for the skip
// histogram, covering the machines a mixed distro tree actually ships.
func archName(class byte, machine uint16) string {
	name := ""
	switch machine {
	case 3:
		name = "i386"
	case 8:
		name = "mips"
	case 20, 21:
		name = "ppc"
	case 22:
		name = "s390"
	case 40:
		name = "arm"
	case 62:
		name = "x86-64" // ELFCLASS32 (x32) lands here
	case 183:
		name = "aarch64"
	case 243:
		name = "riscv"
	default:
		name = fmt.Sprintf("em-%d", machine)
	}
	if class != 2 {
		name += "-elf32"
	}
	return name
}
