package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"bside"
	"bside/internal/asm"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/faults"
	"bside/internal/x86"
)

// writeTree materializes a small distro-shaped tree: ELF programs in
// nested directories, interleaved with the non-candidates a real tree
// is mostly made of (text, truncated files, a 32-bit ELF header).
// Returns the ELF paths.
func writeTree(t *testing.T, root string) []string {
	t.Helper()
	elfs := make([]string, 0, 3)
	for i, rel := range []string{"bin/prog0", "bin/prog1", "usr/lib/prog2"} {
		bin, err := corpus.BuildProgram(corpus.Profile{
			Name: filepath.Base(rel), Kind: elff.KindStatic,
			HotDirect: 3, HotWrapper: 1, Filler: 8, Seed: int64(9000 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := bin.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		elfs = append(elfs, path)
	}
	junk := map[string][]byte{
		"etc/config.txt": []byte("# not a binary\n"),
		"short":          {0x7f, 'E'},
		// Right magic, wrong class: a 32-bit ELF must be skipped, not
		// failed.
		"lib32/old": {0x7f, 'E', 'L', 'F', 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 3, 0},
	}
	for rel, data := range junk {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return elfs
}

// collect runs one sweep and returns the per-path results.
func collect(t *testing.T, root string, opts Options) (map[string]*Result, *Summary) {
	t.Helper()
	results := make(map[string]*Result)
	opts.OnResult = func(r *Result) { results[r.Path] = r }
	sum, err := Run(context.Background(), root, opts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return results, sum
}

func TestSweepMatchesDirectAnalysis(t *testing.T) {
	root := t.TempDir()
	elfs := writeTree(t, root)

	a := bside.NewAnalyzer(bside.Options{})
	results, sum := collect(t, root, Options{Analyzer: a, Jobs: 2})

	if sum.Files != 6 || sum.ELFs != 3 || sum.Skipped != 3 {
		t.Fatalf("counts: files=%d elfs=%d skipped=%d, want 6/3/3", sum.Files, sum.ELFs, sum.Skipped)
	}
	if sum.Analyzed != 3 || sum.Failed != 0 {
		t.Fatalf("analyzed=%d failed=%d (phases=%v)", sum.Analyzed, sum.Failed, sum.FailurePhases)
	}
	if sum.BinariesPerSec <= 0 || sum.Latency.Count != 3 {
		t.Fatalf("throughput accounting: %+v", sum)
	}

	// Every sweep answer must match a direct, sweep-free analysis.
	direct := bside.NewAnalyzer(bside.Options{})
	for _, path := range elfs {
		res := results[path]
		if res == nil {
			t.Fatalf("no result for %s", path)
		}
		if res.Analysis == nil || res.Phase != "" {
			t.Fatalf("%s: phase=%q err=%q", path, res.Phase, res.Error)
		}
		want, err := direct.AnalyzeFileContext(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Syscalls, want.Syscalls) || res.FailOpen != want.FailOpen {
			t.Fatalf("%s: sweep %v (failopen=%v) vs direct %v (failopen=%v)",
				path, res.Syscalls, res.FailOpen, want.Syscalls, want.FailOpen)
		}
	}
}

func TestSweepWarmSecondPass(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)
	cacheDir := t.TempDir()

	_, cold := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{CacheDir: cacheDir})})
	if cold.Warm != 0 {
		t.Fatalf("cold pass reported %d warm hits", cold.Warm)
	}
	results, warm := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{CacheDir: cacheDir})})
	if warm.Warm != warm.Analyzed || warm.Analyzed != 3 {
		t.Fatalf("warm pass: warm=%d analyzed=%d, want 3/3", warm.Warm, warm.Analyzed)
	}
	if warm.WarmHitRatio != 1 {
		t.Fatalf("warm hit ratio %v, want 1", warm.WarmHitRatio)
	}
	for path, res := range results {
		if !res.Cached {
			t.Fatalf("%s not served from cache on second pass", path)
		}
	}
}

func TestSweepNoMmapIdentical(t *testing.T) {
	root := t.TempDir()
	elfs := writeTree(t, root)

	mapped, _ := collect(t, root, Options{
		Analyzer: bside.NewAnalyzer(bside.Options{}), Diff: true,
	})
	copied, _ := collect(t, root, Options{
		Analyzer: bside.NewAnalyzer(bside.Options{DisableMmap: true}), Diff: true, NoMmap: true,
	})
	for _, path := range elfs {
		m, c := mapped[path], copied[path]
		if m == nil || c == nil {
			t.Fatalf("missing result for %s", path)
		}
		if !reflect.DeepEqual(m.Syscalls, c.Syscalls) || m.FailOpen != c.FailOpen ||
			m.Wrappers != c.Wrappers || !reflect.DeepEqual(m.Diff, c.Diff) {
			t.Fatalf("%s: mmap and copied sweeps disagree:\n%+v\n%+v", path, m, c)
		}
	}
}

func TestSweepBoundedQueueDrainsLargeTree(t *testing.T) {
	// More files than the queue holds: the walker must block and
	// resume, never drop.
	root := t.TempDir()
	writeTree(t, root)
	for i := 0; i < 40; i++ {
		path := filepath.Join(root, "noise", fmt.Sprintf("f%02d", i))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, sum := collect(t, root, Options{
		Analyzer: bside.NewAnalyzer(bside.Options{}), Jobs: 1, QueueDepth: 1,
	})
	if sum.Files != 46 || sum.Analyzed != 3 {
		t.Fatalf("files=%d analyzed=%d, want 46/3", sum.Files, sum.Analyzed)
	}
}

func TestSweepAnalyzeFailureIsCountedNotFatal(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)
	// A file that sniffs as a candidate but cannot be parsed: header
	// only, no program headers behind it.
	hdr := make([]byte, 64)
	copy(hdr, []byte{0x7f, 'E', 'L', 'F', 2, 1, 1})
	hdr[16], hdr[18] = 2, 62 // ET_EXEC, EM_X86_64
	if err := os.WriteFile(filepath.Join(root, "truncated"), hdr, 0o755); err != nil {
		t.Fatal(err)
	}

	results, sum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{})})
	if sum.Analyzed != 3 || sum.Failed != 1 || sum.FailurePhases["analyze"] != 1 {
		t.Fatalf("analyzed=%d failed=%d phases=%v", sum.Analyzed, sum.Failed, sum.FailurePhases)
	}
	bad := results[filepath.Join(root, "truncated")]
	if bad == nil || bad.Phase != "analyze" || bad.Error == "" {
		t.Fatalf("failure result: %+v", bad)
	}
}

// TestSweepUnsupportedArchIsSkippedNotFailed: a valid ELF executable
// for a foreign machine is not a parse failure and not an anonymous
// skip — it lands in the per-architecture skip histogram, so the
// summary says how much of a mixed-arch tree the analyzer covered.
func TestSweepUnsupportedArchIsSkippedNotFailed(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)
	foreign := func(name string, class byte, machine uint16) {
		hdr := make([]byte, 64)
		copy(hdr, []byte{0x7f, 'E', 'L', 'F', class, 1, 1})
		hdr[16] = 2 // ET_EXEC
		hdr[18] = byte(machine)
		hdr[19] = byte(machine >> 8)
		if err := os.WriteFile(filepath.Join(root, name), hdr, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	foreign("arm64-bin", 2, 183) // AArch64
	foreign("arm64-too", 2, 183) // second of the same arch
	foreign("riscv-bin", 2, 243) // RISC-V
	foreign("compat-32", 1, 3)   // ELFCLASS32 i386

	results, sum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{})})
	if sum.Failed != 0 || len(sum.FailurePhases) != 0 {
		t.Fatalf("foreign-arch ELFs counted as failures: failed=%d phases=%v",
			sum.Failed, sum.FailurePhases)
	}
	// i386-elf32 is 2: the tree's own lib32/old plus compat-32 — the
	// anonymous 32-bit skip writeTree always contained is now visible.
	want := map[string]int64{"aarch64": 2, "riscv": 1, "i386-elf32": 2}
	if !reflect.DeepEqual(sum.SkippedArches, want) {
		t.Fatalf("arch histogram: %v, want %v", sum.SkippedArches, want)
	}
	if sum.Analyzed != 3 {
		t.Fatalf("analyzed=%d, want the tree's 3 x86-64 binaries", sum.Analyzed)
	}
	for _, name := range []string{"arm64-bin", "riscv-bin", "compat-32"} {
		if results[filepath.Join(root, name)] != nil {
			t.Fatalf("%s: skipped file must not emit a result", name)
		}
	}
}

// TestSweepDiffFlagsResolvedScanOnly plants the one disagreement shape
// -diff exists to catch: a dead function carrying an immediate-loaded
// syscall. The linear scanner resolves it; B-Side's reachability
// rightly excludes it; the sweep must surface the mismatch instead of
// silently trusting either side.
func TestSweepDiffFlagsResolvedScanOnly(t *testing.T) {
	root := t.TempDir()
	b := asm.New()
	b.Func("_start")
	b.MovRegImm32(x86.RAX, 60)
	b.Syscall()
	b.Ret()
	b.Func("dead")
	b.MovRegImm32(x86.RAX, 123)
	b.Syscall()
	b.Ret()
	b.Label("__code_end")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	img, syms, err := b.Finalize(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := elff.Write(elff.Spec{
		Kind: elff.KindStatic, Base: 0x400000, Entry: syms["_start"],
		Blob: img, CodeSize: syms["__code_end"] - 0x400000,
		Symbols: map[string]uint64{"_start": syms["_start"], "dead": syms["dead"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "planted")
	if err := os.WriteFile(path, data, 0o755); err != nil {
		t.Fatal(err)
	}

	results, sum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{}), Diff: true})
	res := results[path]
	if res == nil || res.Diff == nil {
		t.Fatalf("no diff result: %+v", res)
	}
	if !reflect.DeepEqual(res.Syscalls, []uint64{60}) {
		t.Fatalf("B-Side set: %v, want [60]", res.Syscalls)
	}
	if !reflect.DeepEqual(res.Diff.ScanOnly, []uint64{123}) {
		t.Fatalf("scan-only: %+v, want [123]", res.Diff)
	}
	if res.Diff.ScanSites != 2 || res.Diff.ScanResolved != 2 {
		t.Fatalf("scan sites: %+v", res.Diff)
	}
	if sum.ScanDisagreements != 1 {
		t.Fatalf("summary disagreements: %d", sum.ScanDisagreements)
	}
}

// TestSweepDiffAgreesOnCorpus: on corpus binaries — no dead code with
// syscalls — every scan-resolved number is inside B-Side's set.
func TestSweepDiffAgreesOnCorpus(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)
	results, sum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{}), Diff: true})
	if sum.ScanDisagreements != 0 {
		for p, r := range results {
			if r.Diff != nil && len(r.Diff.ScanOnly) > 0 {
				t.Errorf("%s: scan-only %v (bside %v)", p, r.Diff.ScanOnly, r.Syscalls)
			}
		}
		t.Fatalf("disagreements on clean corpus: %d", sum.ScanDisagreements)
	}
	for p, r := range results {
		if r.Diff == nil {
			t.Fatalf("%s: diff missing", p)
		}
		if r.Diff.ScanSites == 0 {
			t.Fatalf("%s: scanner saw no sites", p)
		}
	}
}

func TestSweepProgressCallback(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root)
	var ticks []int64
	opts := Options{
		Analyzer: bside.NewAnalyzer(bside.Options{}), Jobs: 1,
		ProgressEvery: 1,
		OnProgress:    func(s *Summary) { ticks = append(ticks, s.Analyzed+s.Failed) },
	}
	if _, err := Run(context.Background(), root, opts); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("progress ticks: %v, want one per binary", ticks)
	}
	if !sort.SliceIsSorted(ticks, func(i, j int) bool { return ticks[i] < ticks[j] }) {
		t.Fatalf("progress not monotonic: %v", ticks)
	}
}

func TestSweepRequiresAnalyzer(t *testing.T) {
	if _, err := Run(context.Background(), t.TempDir(), Options{}); err == nil {
		t.Fatal("nil analyzer must be rejected")
	}
	a := bside.NewAnalyzer(bside.Options{})
	if _, err := Run(context.Background(), "/nonexistent-sweep-root", Options{Analyzer: a}); err == nil {
		t.Fatal("missing root must be rejected")
	}
}

// TestSweepPoisonedWorkerDoesNotKillPool is the crash-containment
// contract at fleet scale: one binary whose analysis panics (injected
// at the pipeline stage seam, keyed by that binary's content hash)
// must cost exactly its own NDJSON line — counted under phase "panic"
// in the summary — while every other binary's line is byte-identical
// to a clean run of the same tree.
func TestSweepPoisonedWorkerDoesNotKillPool(t *testing.T) {
	root := t.TempDir()
	elfs := writeTree(t, root)

	// canonical renders a result as its NDJSON line with the wall clock
	// zeroed — the only field allowed to differ between runs.
	canonical := func(r *Result) string {
		c := *r
		c.Ms = 0
		data, err := json.Marshal(&c)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	clean, cleanSum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{}), Jobs: 2})
	if cleanSum.Failed != 0 {
		t.Fatalf("clean run failed: %v", cleanSum.FailurePhases)
	}

	poison := elfs[1]
	pb, err := elff.ReadFile(poison)
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: pb.Hash, Panic: true})
	defer restore()

	results, sum := collect(t, root, Options{Analyzer: bside.NewAnalyzer(bside.Options{}), Jobs: 2})
	if sum.Failed != 1 || sum.FailurePhases["panic"] != 1 {
		t.Fatalf("summary: failed=%d phases=%v, want one panic", sum.Failed, sum.FailurePhases)
	}
	if sum.Analyzed != int64(len(elfs)-1) {
		t.Fatalf("analyzed=%d, want %d — the pool stopped early", sum.Analyzed, len(elfs)-1)
	}

	bad := results[poison]
	if bad == nil || bad.Phase != "panic" || !strings.Contains(bad.Error, "panicked") {
		t.Fatalf("poison result: %+v", bad)
	}
	for _, path := range elfs {
		if path == poison {
			continue
		}
		got, want := results[path], clean[path]
		if got == nil || want == nil {
			t.Fatalf("missing result for %s", path)
		}
		if g, w := canonical(got), canonical(want); g != w {
			t.Fatalf("%s: poisoned-run line differs from clean run:\n got %s\nwant %s", path, g, w)
		}
	}
}
