package symex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// TestPropertySymexAgreesWithEmulator cross-validates the two execution
// engines: for randomly generated straight-line programs with fully
// concrete data flow, the symbolic executor's %rax at the syscall site
// must be a constant equal to what the concrete emulator observes.
func TestPropertySymexAgreesWithEmulator(t *testing.T) {
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDI, x86.RSI, x86.R8, x86.R12}

	gen := func(seed int64) func(b *asm.Builder) {
		return func(b *asm.Builder) {
			rng := rand.New(rand.NewSource(seed))
			b.Func("_start")
			b.SubRegImm(x86.RSP, 64)
			// Concrete initial values.
			for _, r := range regs {
				b.MovRegImm32(r, uint32(rng.Intn(1<<16)))
			}
			n := 5 + rng.Intn(25)
			for i := 0; i < n; i++ {
				dst := regs[rng.Intn(len(regs))]
				src := regs[rng.Intn(len(regs))]
				switch rng.Intn(12) {
				case 0:
					b.MovRegImm32(dst, uint32(rng.Intn(1<<20)))
				case 1:
					b.MovRegReg(dst, src)
				case 2:
					b.AddRegReg(dst, src)
				case 3:
					b.SubRegReg(dst, src)
				case 4:
					b.XorRegReg(dst, src)
				case 5:
					b.AndRegImm(dst, int32(rng.Intn(1<<20)))
				case 6:
					b.OrRegImm(dst, int32(rng.Intn(1<<20)))
				case 7:
					b.ShlRegImm(dst, uint8(rng.Intn(8)))
				case 8:
					b.ShrRegImm(dst, uint8(rng.Intn(8)))
				case 9:
					b.IncReg(dst)
				case 10:
					// Round-trip through stack memory.
					b.MovMemReg(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 16}, src)
					b.MovRegMem(dst, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 16})
				case 11:
					b.Push(src)
					b.Pop(dst)
				}
			}
			b.Syscall() // observation point: rax
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
		}
	}

	f := func(seed int64) bool {
		build := gen(seed)
		bin, _ := testbin.Build(t, elff.KindStatic, build, nil)

		// Concrete run.
		m, err := emu.NewProcess(bin, nil)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if err := m.Run(100_000); err != nil {
			t.Logf("seed %d: emu: %v", seed, err)
			return false
		}
		if len(m.Trace) < 1 {
			t.Logf("seed %d: no syscall observed", seed)
			return false
		}
		concrete := m.Trace[0]

		// Symbolic run to the first syscall site.
		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			t.Logf("seed %d: cfg: %v", seed, err)
			return false
		}
		sites := g.SyscallBlocks()
		if len(sites) < 1 {
			return false
		}
		allowed := cfg.NewBlockSet(g.NumBlocks())
		for _, blk := range g.SortedBlocks() {
			allowed.Add(blk)
		}
		start, _ := g.BlockAt(bin.Entry)
		sym := NewMachine(g, NewBudget())
		res := sym.RunToSite(start, NewState(), allowed, sites[0])
		if len(res.SiteStates) != 1 {
			t.Logf("seed %d: %d site states", seed, len(res.SiteStates))
			return false
		}
		v := res.SiteStates[0].Reg(x86.RAX)
		k, ok := v.IsConst()
		if !ok {
			t.Logf("seed %d: symbolic rax %v, want constant", seed, v)
			return false
		}
		if k != concrete {
			t.Logf("seed %d: symex %#x != emulator %#x", seed, k, concrete)
			return false
		}
		return true
	}
	conf := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, conf); err != nil {
		t.Fatal(err)
	}
}
