package symex

import (
	"sync"
	"sync/atomic"
	"time"

	"bside/internal/cfg"
	"bside/internal/x86"
)

// Budget bounds the work one symbolic search may perform. A search that
// exhausts its budget is reported as inconclusive — the analysis-level
// analog of the paper's timeouts.
//
// A Budget is safe for concurrent use: one budget may be shared by many
// machines running on different goroutines (the intra-binary worker
// pool), with the step and fork counters accumulated atomically. The
// Max* limits and Deadline are configuration — set them before the
// first search and leave them alone afterwards.
type Budget struct {
	MaxSteps  int // instructions executed across all paths
	MaxForks  int // path splits
	MaxVisits int // times one path may re-enter the same block

	// Deadline, when non-zero, bounds the wall clock: a search running
	// past it is exhausted regardless of remaining steps, matching the
	// paper's per-binary analysis timeouts.
	Deadline time.Time

	// Cancel, when non-nil, cancels the budget externally: once the
	// channel is closed, Exhausted reports true regardless of the
	// remaining limits. This is the hook that maps a request context's
	// cancellation onto the symbolic-execution budget — an abandoned
	// analysis stops at the next budget check instead of burning CPU to
	// completion.
	Cancel <-chan struct{}

	steps atomic.Int64
	forks atomic.Int64
}

// NewBudget returns a budget with defaults suitable for whole-binary
// analysis.
func NewBudget() *Budget {
	return &Budget{MaxSteps: 500_000, MaxForks: 8_192, MaxVisits: 3}
}

// Clone returns a budget with the same limits and deadline but fresh
// counters — one analysis unit's consumption must not drain another's.
func (b *Budget) Clone() *Budget {
	return &Budget{
		MaxSteps:  b.MaxSteps,
		MaxForks:  b.MaxForks,
		MaxVisits: b.MaxVisits,
		Deadline:  b.Deadline,
		Cancel:    b.Cancel,
	}
}

// AddSteps accrues n executed instructions.
func (b *Budget) AddSteps(n int) { b.steps.Add(int64(n)) }

// AddFork accrues one path split.
func (b *Budget) AddFork() { b.forks.Add(1) }

// AddForks accrues n path splits at once (memo hits replay the
// recorded consumption of the original search).
func (b *Budget) AddForks(n int) { b.forks.Add(int64(n)) }

// Steps returns the instructions executed so far across all paths.
func (b *Budget) Steps() int { return int(b.steps.Load()) }

// Forks returns the path splits so far.
func (b *Budget) Forks() int { return int(b.forks.Load()) }

// Exhausted reports whether any limit was hit: steps, forks, the
// wall-clock deadline, or an external cancellation.
func (b *Budget) Exhausted() bool {
	if int(b.steps.Load()) >= b.MaxSteps || int(b.forks.Load()) >= b.MaxForks {
		return true
	}
	if b.Cancel != nil {
		select {
		case <-b.Cancel:
			return true
		default:
		}
	}
	return !b.Deadline.IsZero() && time.Now().After(b.Deadline)
}

// Result is the outcome of a directed run.
type Result struct {
	// SiteStates holds one state per path that reached the site,
	// captured immediately before the site's final instruction. When the
	// machine's pooled states were used (Machine.NewState), hand the
	// result back via Machine.Release once the states have been read.
	SiteStates []*State
	// HitBudget is set when the search stopped early.
	HitBudget bool
	// BlocksExecuted counts block executions (Table 3's "BBs explored").
	BlocksExecuted int
	// Steps and Forks are this run's own budget consumption (the shared
	// budget accrues them too). Memoized results replay them on a hit,
	// so a memo-served analysis drains the budget exactly like the
	// original computation did.
	Steps int
	Forks int
}

// Machine executes symbolic paths over a recovered CFG. Its scratch
// pools (path states, per-path visit counters) are sync.Pools, so one
// machine may run searches from many goroutines concurrently.
type Machine struct {
	g           *cfg.Graph
	budget      *Budget
	importSlots map[uint64]bool

	statePool  sync.Pool
	visitsPool sync.Pool
	runPool    sync.Pool
}

// runScratch is the per-RunToSite working set: the task stack, its
// parallel visit-buffer stack, and the per-block successor staging
// slice. Pooled so a directed run allocates nothing but its results.
type runScratch struct {
	stack  []task
	visits [][]uint16
	succs  []task
}

// NewMachine builds a machine over g sharing the given budget.
func NewMachine(g *cfg.Graph, budget *Budget) *Machine {
	if budget == nil {
		budget = NewBudget()
	}
	slots := make(map[uint64]bool, len(g.Bin.Imports))
	for _, im := range g.Bin.Imports {
		slots[im.SlotAddr] = true
	}
	return &Machine{g: g, budget: budget, importSlots: slots}
}

// Budget exposes the machine's budget.
func (m *Machine) Budget() *Budget { return m.budget }

// NewState returns an empty path state drawn from the machine's pool;
// pair with Release (directly, or via the Result that carried it).
func (m *Machine) NewState() *State {
	if s, ok := m.statePool.Get().(*State); ok {
		return s
	}
	return NewState()
}

// NewEntryState returns a pooled function-entry state (NewEntryState's
// pooled twin).
func (m *Machine) NewEntryState(stackParams int) *State {
	s := m.NewState()
	s.initEntry(stackParams)
	return s
}

// freeState scrubs s and returns it to the pool.
func (m *Machine) freeState(s *State) {
	s.reset()
	m.statePool.Put(s)
}

// cloneState is State.Clone through the pool.
func (m *Machine) cloneState(s *State) *State {
	c := m.NewState()
	c.Regs = s.Regs
	for k, v := range s.Stack {
		c.Stack[k] = v
	}
	for k, v := range s.Overlay {
		c.Overlay[k] = v
	}
	return c
}

// Release returns a run's surviving states to the pool. Call it once
// the site states have been read; the Values read from them (register
// contents, parameter taints) stay valid, only the states themselves
// are recycled.
func (m *Machine) Release(res *Result) {
	for i, st := range res.SiteStates {
		m.freeState(st)
		res.SiteStates[i] = nil
	}
	res.SiteStates = res.SiteStates[:0]
}

// getVisits returns a zeroed per-path visit-count buffer (indexed by
// block ID).
func (m *Machine) getVisits() []uint16 {
	if v, ok := m.visitsPool.Get().([]uint16); ok && len(v) >= m.g.NumBlocks() {
		for i := range v {
			v[i] = 0
		}
		return v
	}
	return make([]uint16, m.g.NumBlocks())
}

func (m *Machine) cloneVisits(v []uint16) []uint16 {
	c := m.getVisits()
	copy(c, v)
	return c
}

func (m *Machine) freeVisits(v []uint16) { m.visitsPool.Put(v) }

type task struct {
	blk *cfg.Block
	st  *State
}

// RunToSite performs directed forward symbolic execution from start
// toward site. Only blocks in allowed (plus the site itself) may be
// entered; calls to functions outside the set are skipped with an
// ABI-faithful register havoc. The returned states are snapshots taken
// just before the site block's last instruction (the syscall, or the
// call into a wrapper).
//
// Each path owns a dense visit-count buffer; buffers are cloned only
// when a path forks and recycled when it dies, so the per-block cost
// carries no map traffic at all.
func (m *Machine) RunToSite(start *cfg.Block, init *State, allowed *cfg.BlockSet, site *cfg.Block) Result {
	var res Result
	inSet := func(b *cfg.Block) bool {
		return b != nil && (b == site || allowed.Has(b))
	}
	maxVisits := uint16(m.budget.MaxVisits)

	sc, _ := m.runPool.Get().(*runScratch)
	if sc == nil {
		sc = &runScratch{}
	}
	stack := append(sc.stack[:0], task{blk: start, st: init})
	visitStack := append(sc.visits[:0], m.getVisits())
	for len(stack) > 0 {
		if m.budget.Exhausted() {
			res.HitBudget = true
			for i, t := range stack {
				m.freeState(t.st)
				m.freeVisits(visitStack[i])
			}
			break
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visits := visitStack[len(visitStack)-1]
		visitStack = visitStack[:len(visitStack)-1]

		if visits[t.blk.ID] >= maxVisits {
			m.freeState(t.st)
			m.freeVisits(visits)
			continue
		}
		visits[t.blk.ID]++
		res.BlocksExecuted++

		st := t.st
		n := len(t.blk.Insns)

		// Execute the block body (everything but the last instruction).
		// The whole block is charged in one atomic add so a budget
		// shared across worker goroutines is not a contention point.
		for _, in := range t.blk.Insns[:n-1] {
			m.step(st, in)
		}
		m.budget.AddSteps(n)
		res.Steps += n

		if t.blk == site {
			res.SiteStates = append(res.SiteStates, st)
			m.freeVisits(visits)
			continue
		}

		// Dispatch on the final instruction.
		succs := sc.succs[:0]
		push := func(b *cfg.Block, s *State) {
			succs = append(succs, task{blk: b, st: s})
		}
		last := t.blk.Last()
		switch last.Op {
		case x86.OpJmp:
			if to := succOf(t.blk, cfg.EdgeJump); inSet(to) {
				push(to, st)
			}

		case x86.OpJcc:
			to := succOf(t.blk, cfg.EdgeJump)
			fall := succOf(t.blk, cfg.EdgeFall)
			if inSet(to) && inSet(fall) {
				m.budget.AddFork()
				res.Forks++
				push(fall, m.cloneState(st))
				push(to, st)
			} else if inSet(to) {
				push(to, st)
			} else if inSet(fall) {
				push(fall, st)
			}

		case x86.OpCall:
			callee := succOf(t.blk, cfg.EdgeCall)
			fall := succOf(t.blk, cfg.EdgeCallFall)
			if inSet(callee) {
				m.pushRet(st, last.Next())
				push(callee, st)
			} else if inSet(fall) {
				st.havocCallerSaved()
				push(fall, st)
			}

		case x86.OpCallInd:
			fall := succOf(t.blk, cfg.EdgeCallFall)
			if t.blk.ImportCall != "" {
				if inSet(fall) {
					st.havocCallerSaved()
					push(fall, st)
				}
				break
			}
			tv := m.evalOperand(st, last, last.Dst)
			if k, ok := tv.IsConst(); ok {
				if to, found := m.g.BlockAt(k); found && inSet(to) {
					m.pushRet(st, last.Next())
					push(to, st)
					break
				}
				if inSet(fall) {
					st.havocCallerSaved()
					push(fall, st)
				}
				break
			}
			// Symbolic target: fork into each allowed heuristic target
			// and also the skip-the-call continuation.
			for _, e := range t.blk.Succs {
				if e.Kind != cfg.EdgeIndirectCall || !inSet(e.To) {
					continue
				}
				s2 := m.cloneState(st)
				m.pushRet(s2, last.Next())
				m.budget.AddFork()
				res.Forks++
				push(e.To, s2)
			}
			if inSet(fall) {
				st.havocCallerSaved()
				push(fall, st)
			}

		case x86.OpJmpInd:
			if t.blk.ImportCall != "" {
				// Import stub: model call-and-return through the
				// external function.
				st.havocCallerSaved()
				if to, ok := m.popRetTarget(st); ok && inSet(to) {
					push(to, st)
				}
				break
			}
			tv := m.evalOperand(st, last, last.Dst)
			if k, ok := tv.IsConst(); ok {
				if to, found := m.g.BlockAt(k); found && inSet(to) {
					push(to, st)
				}
				break
			}
			for _, e := range t.blk.Succs {
				if e.Kind != cfg.EdgeIndirectJump || !inSet(e.To) {
					continue
				}
				m.budget.AddFork()
				res.Forks++
				push(e.To, m.cloneState(st))
			}

		case x86.OpRet:
			if to, ok := m.popRetTarget(st); ok && inSet(to) {
				push(to, st)
			}

		case x86.OpSyscall:
			// A syscall on the way to the site: clobber per the ABI.
			st.SetReg(x86.RAX, Unknown())
			st.SetReg(x86.RCX, Unknown())
			st.SetReg(x86.R11, Unknown())
			if fall := succOf(t.blk, cfg.EdgeFall); inSet(fall) {
				push(fall, st)
			}

		default:
			// Plain fall-through boundary: the last instruction is an
			// ordinary one; apply it and continue.
			m.step(st, last)
			if fall := succOf(t.blk, cfg.EdgeFall); inSet(fall) {
				push(fall, st)
			}
		}

		// The path's own buffers move to the first successor; further
		// successors (forks) get copies; a dead end recycles them. st
		// flows into at most one successor by construction (forks carry
		// clones), so it is freed exactly when no successor took it.
		sc.succs = succs[:0]
		if len(succs) == 0 {
			m.freeState(st)
			m.freeVisits(visits)
			continue
		}
		stUsed := false
		for i := range succs {
			stack = append(stack, succs[i])
			if i == 0 {
				visitStack = append(visitStack, visits)
			} else {
				visitStack = append(visitStack, m.cloneVisits(visits))
			}
			if succs[i].st == st {
				stUsed = true
			}
		}
		if !stUsed {
			m.freeState(st)
		}
	}
	sc.stack = stack[:0]
	sc.visits = visitStack[:0]
	m.runPool.Put(sc)
	return res
}

func succOf(b *cfg.Block, kind cfg.EdgeKind) *cfg.Block {
	for _, e := range b.Succs {
		if e.Kind == kind {
			return e.To
		}
	}
	return nil
}

// pushRet pushes a concrete return address.
func (m *Machine) pushRet(st *State, ret uint64) {
	rsp := st.Reg(x86.RSP)
	if rsp.Kind != KStackPtr {
		return
	}
	off := rsp.StackOff() - 8
	st.SetReg(x86.RSP, StackPtr(off))
	st.StoreStack(off, Const(ret))
}

// popRetTarget pops the return address and resolves its block.
func (m *Machine) popRetTarget(st *State) (*cfg.Block, bool) {
	rsp := st.Reg(x86.RSP)
	if rsp.Kind != KStackPtr {
		return nil, false
	}
	v := st.LoadStack(rsp.StackOff())
	st.SetReg(x86.RSP, StackPtr(rsp.StackOff()+8))
	k, ok := v.IsConst()
	if !ok {
		return nil, false
	}
	return m.blockAt(k)
}

func (m *Machine) blockAt(addr uint64) (*cfg.Block, bool) {
	b, ok := m.g.BlockAt(addr)
	return b, ok
}

// ParamValueAtCall reads the value the callee will observe for parameter
// p, given the state captured at the call instruction.
func ParamValueAtCall(st *State, p ParamRef) Value {
	if !p.Stack {
		return st.Reg(p.Reg)
	}
	rsp := st.Reg(x86.RSP)
	if rsp.Kind != KStackPtr {
		return Unknown()
	}
	// The callee sees its stack parameters above the return address the
	// call is about to push: callee [rsp+off] == caller [rsp+off-8].
	return st.LoadStack(rsp.StackOff() + p.Off - 8)
}
