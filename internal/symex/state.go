package symex

import (
	"bside/internal/x86"
)

// State is one machine state along a symbolic path: the sixteen
// general-purpose registers, the abstract stack (keyed by offset from
// the path's entry stack pointer), and an overlay for stores to
// concrete addresses.
type State struct {
	Regs    [x86.NumGPR]Value
	Stack   map[int64]Value
	Overlay map[uint64]Value
}

// NewState returns a state with every register unknown and RSP pointing
// at the abstract stack base.
func NewState() *State {
	s := &State{
		Stack:   make(map[int64]Value),
		Overlay: make(map[uint64]Value),
	}
	s.Regs[x86.RSP] = StackPtr(0)
	return s
}

// NewEntryState returns a function-entry state with the System V
// argument registers and the first stackParams stack slots tagged as
// parameters — the configuration used by wrapper detection's phase 2.
func NewEntryState(stackParams int) *State {
	s := NewState()
	s.initEntry(stackParams)
	return s
}

// initEntry applies the function-entry parameter tagging to an
// otherwise-fresh state (shared by NewEntryState and the machine's
// pooled variant).
func (s *State) initEntry(stackParams int) {
	for _, r := range x86.ParamRegs {
		s.Regs[r] = Param(ParamRef{Reg: r})
	}
	for i := 0; i < stackParams; i++ {
		off := int64(8 * (i + 1)) // above the return address
		s.Stack[off] = Param(ParamRef{Stack: true, Off: off})
	}
}

// reset scrubs the state back to the NewState shape, keeping the map
// capacity for pooled reuse.
func (s *State) reset() {
	s.Regs = [x86.NumGPR]Value{}
	s.Regs[x86.RSP] = StackPtr(0)
	clear(s.Stack)
	clear(s.Overlay)
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{
		Regs:    s.Regs,
		Stack:   make(map[int64]Value, len(s.Stack)),
		Overlay: make(map[uint64]Value, len(s.Overlay)),
	}
	for k, v := range s.Stack {
		c.Stack[k] = v
	}
	for k, v := range s.Overlay {
		c.Overlay[k] = v
	}
	return c
}

// Reg returns the value of r.
func (s *State) Reg(r x86.Reg) Value {
	if !r.Valid() {
		return Unknown()
	}
	return s.Regs[r]
}

// SetReg assigns r.
func (s *State) SetReg(r x86.Reg, v Value) {
	if r.Valid() {
		s.Regs[r] = v
	}
}

// LoadStack reads the 8-byte slot at the given abstract offset.
func (s *State) LoadStack(off int64) Value {
	if v, ok := s.Stack[off]; ok {
		return v
	}
	return Unknown()
}

// StoreStack writes the 8-byte slot at the given abstract offset.
func (s *State) StoreStack(off int64, v Value) { s.Stack[off] = v }

// havocCallerSaved clobbers the ABI caller-saved registers, modelling a
// skipped call to a function outside the directed search set.
func (s *State) havocCallerSaved() {
	for r := x86.Reg(0); r < x86.NumGPR; r++ {
		if r.IsCallerSaved() {
			s.Regs[r] = Unknown()
		}
	}
}
