package symex

import (
	"encoding/binary"

	"bside/internal/x86"
)

// step applies the effect of one non-control-flow instruction to st.
// Control transfer is handled by RunToSite's dispatcher; if a control
// instruction lands here (mid-block), it is a no-op.
func (m *Machine) step(st *State, in x86.Inst) {
	switch in.Op {
	case x86.OpMov:
		m.writeOperand(st, in, in.Dst, m.evalOperand(st, in, in.Src))

	case x86.OpLea:
		st.SetReg(in.Dst.Reg, m.evalEA(st, in, in.Src.Mem))

	case x86.OpXor:
		if in.Dst.Kind == x86.KindReg && in.Src.Kind == x86.KindReg && in.Dst.Reg == in.Src.Reg {
			st.SetReg(in.Dst.Reg, Const(0)) // zeroing idiom
			return
		}
		m.alu(st, in, func(a, b uint64) uint64 { return a ^ b })

	case x86.OpAdd:
		m.addSub(st, in, 1)

	case x86.OpSub:
		m.addSub(st, in, -1)

	case x86.OpAnd:
		m.alu(st, in, func(a, b uint64) uint64 { return a & b })

	case x86.OpOr:
		m.alu(st, in, func(a, b uint64) uint64 { return a | b })

	case x86.OpShl:
		m.alu(st, in, func(a, b uint64) uint64 { return a << (b & 63) })

	case x86.OpShr:
		m.alu(st, in, func(a, b uint64) uint64 { return a >> (b & 63) })

	case x86.OpInc:
		m.incDec(st, in, 1)

	case x86.OpDec:
		m.incDec(st, in, -1)

	case x86.OpPush:
		v := m.evalOperand(st, in, in.Dst)
		rsp := st.Reg(x86.RSP)
		if rsp.Kind == KStackPtr {
			off := rsp.StackOff() - 8
			st.SetReg(x86.RSP, StackPtr(off))
			st.StoreStack(off, v)
		}

	case x86.OpPop:
		rsp := st.Reg(x86.RSP)
		if rsp.Kind == KStackPtr {
			v := st.LoadStack(rsp.StackOff())
			st.SetReg(x86.RSP, StackPtr(rsp.StackOff()+8))
			m.writeOperand(st, in, in.Dst, v)
		} else {
			m.writeOperand(st, in, in.Dst, Unknown())
		}

	case x86.OpLeave:
		st.SetReg(x86.RSP, st.Reg(x86.RBP))
		rsp := st.Reg(x86.RSP)
		if rsp.Kind == KStackPtr {
			st.SetReg(x86.RBP, st.LoadStack(rsp.StackOff()))
			st.SetReg(x86.RSP, StackPtr(rsp.StackOff()+8))
		} else {
			st.SetReg(x86.RBP, Unknown())
		}

	case x86.OpMovzx, x86.OpMovsx, x86.OpMovsxd:
		v := m.evalOperand(st, in, in.Src)
		if _, ok := v.IsConst(); !ok {
			v = taintedUnknown(v)
		}
		// Constants in this corpus are small non-negative syscall
		// numbers; extension is the identity for them.
		m.writeOperand(st, in, in.Dst, v)

	case x86.OpCdqe:
		v := st.Reg(x86.RAX)
		if k, ok := v.IsConst(); ok {
			st.SetReg(x86.RAX, Const(uint64(int64(int32(uint32(k))))))
		} else {
			st.SetReg(x86.RAX, taintedUnknown(v))
		}

	case x86.OpCmp, x86.OpTest, x86.OpNop, x86.OpEndbr64:
		// Flags are not tracked; both branch directions are explored.

	case x86.OpSyscall:
		st.SetReg(x86.RAX, Unknown())
		st.SetReg(x86.RCX, Unknown())
		st.SetReg(x86.R11, Unknown())
	}
}

func (m *Machine) addSub(st *State, in x86.Inst, sign int64) {
	a := m.evalOperand(st, in, in.Dst)
	b := m.evalOperand(st, in, in.Src)
	var v Value
	ka, aConst := a.IsConst()
	kb, bConst := b.IsConst()
	switch {
	case aConst && bConst:
		if sign > 0 {
			v = truncate(Const(ka+kb), in.OpSize)
		} else {
			v = truncate(Const(ka-kb), in.OpSize)
		}
	case a.Kind == KStackPtr && bConst:
		v = StackPtr(a.StackOff() + sign*int64(kb))
	default:
		v = taintedUnknown(a, b)
	}
	m.writeOperand(st, in, in.Dst, v)
}

func (m *Machine) alu(st *State, in x86.Inst, f func(a, b uint64) uint64) {
	a := m.evalOperand(st, in, in.Dst)
	b := m.evalOperand(st, in, in.Src)
	ka, aConst := a.IsConst()
	kb, bConst := b.IsConst()
	if aConst && bConst {
		m.writeOperand(st, in, in.Dst, truncate(Const(f(ka, kb)), in.OpSize))
		return
	}
	m.writeOperand(st, in, in.Dst, taintedUnknown(a, b))
}

func (m *Machine) incDec(st *State, in x86.Inst, sign int64) {
	a := m.evalOperand(st, in, in.Dst)
	if k, ok := a.IsConst(); ok {
		m.writeOperand(st, in, in.Dst, truncate(Const(uint64(int64(k)+sign)), in.OpSize))
		return
	}
	if a.Kind == KStackPtr {
		m.writeOperand(st, in, in.Dst, StackPtr(a.StackOff()+sign))
		return
	}
	m.writeOperand(st, in, in.Dst, taintedUnknown(a))
}

// evalOperand computes the value of an operand.
func (m *Machine) evalOperand(st *State, in x86.Inst, op x86.Operand) Value {
	switch op.Kind {
	case x86.KindImm:
		return Const(uint64(op.Imm))
	case x86.KindReg:
		return truncate(st.Reg(op.Reg), in.OpSize)
	case x86.KindMem:
		return m.load(st, m.evalEA(st, in, op.Mem), in.OpSize)
	default:
		return Unknown()
	}
}

// evalEA computes a memory operand's effective address.
func (m *Machine) evalEA(st *State, in x86.Inst, mem x86.Mem) Value {
	if ea, ok := in.MemEA(x86.MemOp(mem)); ok {
		return Const(ea)
	}
	base := Const(0)
	if mem.Base != x86.RegNone {
		base = st.Reg(mem.Base)
	}
	idx := Const(0)
	if mem.Index != x86.RegNone {
		idx = st.Reg(mem.Index)
	}
	kb, baseConst := base.IsConst()
	ki, idxConst := idx.IsConst()
	switch {
	case baseConst && idxConst:
		return Const(kb + ki*uint64(mem.Scale) + uint64(int64(mem.Disp)))
	case base.Kind == KStackPtr && idxConst:
		return StackPtr(base.StackOff() + int64(ki*uint64(mem.Scale)) + int64(mem.Disp))
	default:
		return taintedUnknown(base, idx)
	}
}

// load reads size bytes at the (symbolic) address ea.
func (m *Machine) load(st *State, ea Value, size uint8) Value {
	switch ea.Kind {
	case KStackPtr:
		return truncate(st.LoadStack(ea.StackOff()), size)
	case KConst:
		if v, ok := st.Overlay[ea.K]; ok {
			return truncate(v, size)
		}
		if m.importSlots[ea.K] {
			// GOT slots are filled by the loader; statically opaque.
			return Unknown()
		}
		if raw, ok := m.g.Bin.BytesAt(ea.K); ok && len(raw) >= int(size) {
			switch size {
			case 8:
				return Const(binary.LittleEndian.Uint64(raw))
			case 4:
				return Const(uint64(binary.LittleEndian.Uint32(raw)))
			case 2:
				return Const(uint64(binary.LittleEndian.Uint16(raw)))
			case 1:
				return Const(uint64(raw[0]))
			}
		}
		return Unknown()
	default:
		return Unknown()
	}
}

// writeOperand stores v into a register or memory destination.
func (m *Machine) writeOperand(st *State, in x86.Inst, op x86.Operand, v Value) {
	switch op.Kind {
	case x86.KindReg:
		st.SetReg(op.Reg, truncate(v, in.OpSize))
	case x86.KindMem:
		ea := m.evalEA(st, in, op.Mem)
		switch ea.Kind {
		case KStackPtr:
			st.StoreStack(ea.StackOff(), v)
		case KConst:
			st.Overlay[ea.K] = v
		}
		// Stores to unknown addresses are dropped; see package docs.
	}
}
