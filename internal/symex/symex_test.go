package symex

import (
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// recoverGraph builds a binary and its CFG.
func recoverGraph(t *testing.T, fn func(b *asm.Builder)) (*cfg.Graph, map[string]uint64) {
	t.Helper()
	bin, syms := testbin.Build(t, elff.KindStatic, fn, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return g, syms
}

// allBlocks returns the full block set as an allowed set.
func allBlocks(g *cfg.Graph) *cfg.BlockSet {
	s := cfg.NewBlockSet(g.NumBlocks())
	for _, b := range g.SortedBlocks() {
		s.Add(b)
	}
	return s
}

// raxAtSite runs from start to the site and collects rax values.
func raxAtSite(t *testing.T, g *cfg.Graph, start, site *cfg.Block) []Value {
	t.Helper()
	m := NewMachine(g, NewBudget())
	res := m.RunToSite(start, NewState(), allBlocks(g), site)
	if res.HitBudget {
		t.Fatal("unexpected budget exhaustion")
	}
	vals := make([]Value, 0, len(res.SiteStates))
	for _, st := range res.SiteStates {
		vals = append(vals, st.Reg(x86.RAX))
	}
	return vals
}

func TestFig1A_SameBlockImmediate(t *testing.T) {
	g, _ := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 0) // read
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	vals := raxAtSite(t, g, site, site)
	if len(vals) != 1 {
		t.Fatalf("states: %d", len(vals))
	}
	if k, ok := vals[0].IsConst(); !ok || k != 0 {
		t.Fatalf("rax = %v", vals[0])
	}
}

func TestFig1B_ImmediateInDistantBlock(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 2) // open, defined early
		b.MovRegImm32(x86.RCX, 5)
		b.Label("spin")
		b.DecReg(x86.RCX)
		b.CmpRegImm(x86.RCX, 0)
		b.Jcc(x86.CondNE, "spin")
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	vals := raxAtSite(t, g, start, site)
	if len(vals) == 0 {
		t.Fatal("no path reached the site")
	}
	for _, v := range vals {
		if k, ok := v.IsConst(); !ok || k != 2 {
			t.Fatalf("rax = %v", v)
		}
	}
}

func TestFig1C_ImmediateThroughStackMemory(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 1) // write
		b.Nop()
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1})
		b.Syscall()
		b.AddRegImm(x86.RSP, 16)
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	vals := raxAtSite(t, g, start, site)
	if len(vals) == 0 {
		t.Fatal("no path reached the site")
	}
	for _, v := range vals {
		if k, ok := v.IsConst(); !ok || k != 1 {
			t.Fatalf("rax = %v (stack tracking lost the value)", v)
		}
	}
}

func TestWrapperParamRegister(t *testing.T) {
	// A libc-style wrapper: syscall(long n, ...) with the number in rdi.
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Ret()
		b.Func("wrapper")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	entry, _ := g.BlockAt(syms["wrapper"])
	m := NewMachine(g, NewBudget())
	res := m.RunToSite(entry, NewEntryState(6), allBlocks(g), site)
	if len(res.SiteStates) == 0 {
		t.Fatal("no site states")
	}
	v := res.SiteStates[0].Reg(x86.RAX)
	if v.Kind != KParam || v.P.Reg != x86.RDI || v.P.Stack {
		t.Fatalf("rax = %v, want arg:rdi", v)
	}
}

func TestWrapperParamStackSlot(t *testing.T) {
	// A Go-style wrapper taking the syscall number on the stack.
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Ret()
		b.Func("wrapper")
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	entry, _ := g.BlockAt(syms["wrapper"])
	m := NewMachine(g, NewBudget())
	res := m.RunToSite(entry, NewEntryState(6), allBlocks(g), site)
	if len(res.SiteStates) == 0 {
		t.Fatal("no site states")
	}
	v := res.SiteStates[0].Reg(x86.RAX)
	if v.Kind != KParam || !v.P.Stack || v.P.Off != 8 {
		t.Fatalf("rax = %v, want arg[rsp+8]", v)
	}
}

func TestSkipCallHavoc(t *testing.T) {
	// The syscall number is parked in rbx (callee-saved) across a call
	// to a popular function (Fig 2A): the skipped call must not destroy
	// it, while rax (caller-saved) must be havocked.
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RBX, 3) // close
		b.MovRegImm32(x86.RAX, 99)
		b.CallLabel("memcpyish")
		b.MovRegReg(x86.RAX, x86.RBX)
		b.Syscall()
		b.Ret()
		b.Func("memcpyish")
		b.MovRegImm32(x86.RAX, 1234)
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	// Direct the search so the callee is OUTSIDE the allowed set: the
	// call must be skipped, not followed.
	callee, _ := g.BlockAt(syms["memcpyish"])
	allowed := cfg.NewBlockSet(g.NumBlocks())
	for _, b := range g.SortedBlocks() {
		if b != callee {
			allowed.Add(b)
		}
	}

	m := NewMachine(g, NewBudget())
	res := m.RunToSite(start, NewState(), allowed, site)
	if len(res.SiteStates) == 0 {
		t.Fatal("no site states")
	}
	v := res.SiteStates[0].Reg(x86.RAX)
	if k, ok := v.IsConst(); !ok || k != 3 {
		t.Fatalf("rax = %v, want 3 preserved via rbx", v)
	}
}

func TestCallStepInWhenAllowed(t *testing.T) {
	// When the callee is in the directed set (it contains the site), the
	// executor must follow the call.
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 42)
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	vals := raxAtSite(t, g, start, site)
	if len(vals) == 0 {
		t.Fatal("call not followed")
	}
	if k, ok := vals[0].IsConst(); !ok || k != 42 {
		t.Fatalf("rax = %v", vals[0])
	}
}

func TestReturnFlowAfterCall(t *testing.T) {
	// Value set inside a callee, returned, then used at a later site:
	// exercises concrete return-address push/pop.
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("pick")
		b.Syscall()
		b.Ret()
		b.Func("pick")
		b.MovRegImm32(x86.RAX, 7)
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	vals := raxAtSite(t, g, start, site)
	if len(vals) == 0 {
		t.Fatal("no site states")
	}
	if k, ok := vals[0].IsConst(); !ok || k != 7 {
		t.Fatalf("rax = %v", vals[0])
	}
}

func TestIndirectCallForksIntoTargets(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Lea(x86.RDX, "handler")
		b.CallReg(x86.RDX)
		b.Ret()
		b.Func("handler")
		b.MovRegImm32(x86.RAX, 41)
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	vals := raxAtSite(t, g, start, site)
	if len(vals) == 0 {
		t.Fatal("indirect call target not explored")
	}
	if k, ok := vals[0].IsConst(); !ok || k != 41 {
		t.Fatalf("rax = %v", vals[0])
	}
}

func TestParamValueAtCall(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.SubRegImm(x86.RSP, 16)
		b.MovMemImm32(x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1}, 39) // getpid via stack arg
		b.MovRegImm32(x86.RDI, 57)                                              // fork via reg arg
		b.CallLabel("wrapper")
		b.AddRegImm(x86.RSP, 16)
		b.Ret()
		b.Func("wrapper")
		b.Ret()
	})
	// The site is the call block.
	callBlk, ok := g.BlockContaining(syms["wrapper"] - 1)
	_ = callBlk
	_ = ok
	var site *cfg.Block
	for _, b := range g.SortedBlocks() {
		if b.Last().Op == x86.OpCall {
			site = b
		}
	}
	if site == nil {
		t.Fatal("no call block")
	}
	start, _ := g.BlockAt(syms["_start"])
	m := NewMachine(g, NewBudget())
	res := m.RunToSite(start, NewState(), allBlocks(g), site)
	if len(res.SiteStates) == 0 {
		t.Fatal("no site states")
	}
	st := res.SiteStates[0]
	if v := ParamValueAtCall(st, ParamRef{Reg: x86.RDI}); mustConst(t, v) != 57 {
		t.Fatalf("reg param = %v", v)
	}
	if v := ParamValueAtCall(st, ParamRef{Stack: true, Off: 8}); mustConst(t, v) != 39 {
		t.Fatalf("stack param = %v", v)
	}
}

func mustConst(t *testing.T, v Value) uint64 {
	t.Helper()
	k, ok := v.IsConst()
	if !ok {
		t.Fatalf("value %v not constant", v)
	}
	return k
}

func TestBudgetStopsLoops(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.Label("forever")
		b.IncReg(x86.RCX)
		b.JmpLabel("forever")
	})
	start, _ := g.BlockAt(syms["_start"])
	m := NewMachine(g, &Budget{MaxSteps: 100, MaxForks: 10, MaxVisits: 1000})
	res := m.RunToSite(start, NewState(), allBlocks(g), nil)
	if !res.HitBudget {
		t.Fatal("budget must stop an infinite loop")
	}
}

func TestZeroingIdiomAndTruncation(t *testing.T) {
	g, syms := recoverGraph(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm64(x86.RAX, 0xFFFFFFFF_00000001)
		b.XorRegReg32(x86.RDI, x86.RDI) // xor edi, edi
		b.MovRegImm32(x86.RAX, 0xFFFFFFFF)
		b.Syscall()
		b.Ret()
	})
	site := g.SyscallBlocks()[0]
	start, _ := g.BlockAt(syms["_start"])
	m := NewMachine(g, NewBudget())
	res := m.RunToSite(start, NewState(), allBlocks(g), site)
	if len(res.SiteStates) == 0 {
		t.Fatal("no site states")
	}
	st := res.SiteStates[0]
	if k := mustConst(t, st.Reg(x86.RDI)); k != 0 {
		t.Fatalf("rdi = %#x", k)
	}
	if k := mustConst(t, st.Reg(x86.RAX)); k != 0xFFFFFFFF {
		t.Fatalf("rax = %#x (32-bit mov must zero-extend)", k)
	}
}

func TestValueHelpers(t *testing.T) {
	if Const(5).String() != "0x5" {
		t.Error("const string")
	}
	if StackPtr(-8).String() != "stack-8" {
		t.Errorf("stack string: %s", StackPtr(-8).String())
	}
	p := Param(ParamRef{Reg: x86.RDI})
	if p.String() != "arg:rdi" {
		t.Errorf("param string: %s", p.String())
	}
	u := taintedUnknown(p, Param(ParamRef{Stack: true, Off: 16}))
	if len(u.AllTaint()) != 2 {
		t.Errorf("taint: %v", u.AllTaint())
	}
	// Dedup.
	u2 := taintedUnknown(p, p, u)
	if len(u2.AllTaint()) != 2 {
		t.Errorf("dedup taint: %v", u2.AllTaint())
	}
	if v := truncate(Const(0x1FF), 1); mustConst(t, v) != 0xFF {
		t.Errorf("truncate byte: %v", v)
	}
}
