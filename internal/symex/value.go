// Package symex implements the symbolic execution engine behind
// B-Side's system-call identification (§4.4 of the paper): a forward,
// CFG-directed executor over decoded x86-64 whose value domain tracks
// concrete constants, abstract stack pointers, tagged function
// parameters, and taint-carrying unknowns. Constants survive round
// trips through stack memory — the property that lets B-Side identify
// system call numbers where use-define-chain tools (SysFilter) and
// register-window scanners (Chestnut) lose them.
package symex

import (
	"fmt"
	"sort"
	"strings"

	"bside/internal/x86"
)

// Kind discriminates symbolic values.
type Kind uint8

// Value kinds.
const (
	// KUnknown is an opaque value, possibly tainted by parameters.
	KUnknown Kind = iota
	// KConst is a concrete 64-bit constant.
	KConst
	// KStackPtr is an address into the abstract stack: base + offset.
	KStackPtr
	// KParam is an unmodified function parameter (register or stack
	// slot), used by the wrapper-detection heuristic.
	KParam
)

// ParamRef names a function parameter in the System V sense: either one
// of the argument registers, or a stack slot at a positive offset from
// the entry stack pointer (offset 8 is the first qword above the return
// address).
type ParamRef struct {
	Stack bool
	Reg   x86.Reg
	Off   int64
}

// String renders the parameter reference.
func (p ParamRef) String() string {
	if p.Stack {
		return fmt.Sprintf("arg[rsp+%d]", p.Off)
	}
	return "arg:" + p.Reg.String()
}

// Value is a symbolic value. The zero value is an untainted unknown.
type Value struct {
	Kind Kind
	K    uint64 // constant bits (KConst) or stack offset as int64 (KStackPtr)
	P    ParamRef
	// Taint lists the parameters that influenced a KUnknown value (or,
	// for KParam, is implicitly {P}). Kept sorted and deduplicated.
	Taint []ParamRef
}

// Const builds a concrete value.
func Const(v uint64) Value { return Value{Kind: KConst, K: v} }

// StackPtr builds an abstract stack address at the given offset from
// the state's stack base.
func StackPtr(off int64) Value { return Value{Kind: KStackPtr, K: uint64(off)} }

// Param builds a parameter value.
func Param(p ParamRef) Value { return Value{Kind: KParam, P: p} }

// Unknown is an untainted opaque value.
func Unknown() Value { return Value{} }

// IsConst reports whether v is concrete, returning its bits.
func (v Value) IsConst() (uint64, bool) {
	if v.Kind == KConst {
		return v.K, true
	}
	return 0, false
}

// StackOff returns the stack offset of a KStackPtr value.
func (v Value) StackOff() int64 { return int64(v.K) }

// AllTaint returns the parameters influencing v (for KParam, the
// parameter itself).
func (v Value) AllTaint() []ParamRef {
	if v.Kind == KParam {
		return []ParamRef{v.P}
	}
	return v.Taint
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case KConst:
		return fmt.Sprintf("%#x", v.K)
	case KStackPtr:
		return fmt.Sprintf("stack%+d", v.StackOff())
	case KParam:
		return v.P.String()
	default:
		if len(v.Taint) == 0 {
			return "?"
		}
		parts := make([]string, len(v.Taint))
		for i, p := range v.Taint {
			parts[i] = p.String()
		}
		return "?{" + strings.Join(parts, ",") + "}"
	}
}

// taintedUnknown builds an unknown influenced by the taints of the given
// values.
func taintedUnknown(vs ...Value) Value {
	var taint []ParamRef
	for _, v := range vs {
		taint = append(taint, v.AllTaint()...)
	}
	return Value{Kind: KUnknown, Taint: dedupParams(taint)}
}

func dedupParams(ps []ParamRef) []ParamRef {
	if len(ps) <= 1 {
		return ps
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Stack != ps[j].Stack {
			return !ps[i].Stack
		}
		if ps[i].Reg != ps[j].Reg {
			return ps[i].Reg < ps[j].Reg
		}
		return ps[i].Off < ps[j].Off
	})
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// truncate masks a value to the given operand size, modelling the
// zero-extension of 32-bit destinations. Non-constants keep their
// identity for sizes >= 4 (the analysis only needs low-32-bit
// precision); narrower writes degrade to tainted unknowns.
func truncate(v Value, size uint8) Value {
	switch size {
	case 8:
		return v
	case 4:
		if k, ok := v.IsConst(); ok {
			return Const(k & 0xFFFFFFFF)
		}
		if v.Kind == KParam || v.Kind == KUnknown {
			return v
		}
		return taintedUnknown(v)
	default:
		if k, ok := v.IsConst(); ok {
			mask := uint64(1)<<(8*uint(size)) - 1
			return Const(k & mask)
		}
		return taintedUnknown(v)
	}
}
