// Package testbin builds small in-memory ELF images for tests. It wraps
// the assembler and ELF writer behind a couple of conventions: the
// "_start" label becomes the entry point, and an optional "__code_end"
// label separates code from data.
package testbin

import (
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
)

// Base is the load address used for all test images.
const Base = 0x400000

// Build assembles fn into an ELF image of the given kind and parses it
// back. Extra customization of the spec (imports, needed libraries) can
// be applied through mutate (may be nil).
func Build(t testing.TB, kind elff.Kind, fn func(b *asm.Builder), mutate func(spec *elff.Spec, syms map[string]uint64)) (*elff.Binary, map[string]uint64) {
	t.Helper()
	return BuildAt(t, kind, Base, fn, mutate)
}

// BuildAt is Build with an explicit load address (distinct modules of
// one emulated process need disjoint bases).
func BuildAt(t testing.TB, kind elff.Kind, base uint64, fn func(b *asm.Builder), mutate func(spec *elff.Spec, syms map[string]uint64)) (*elff.Binary, map[string]uint64) {
	t.Helper()
	b := asm.New()
	fn(b)
	if err := b.Err(); err != nil {
		t.Fatalf("testbin: assemble: %v", err)
	}
	img, syms, err := b.Finalize(base)
	if err != nil {
		t.Fatalf("testbin: finalize: %v", err)
	}
	// Only function symbols go into the symbol table; local labels are
	// an assembler-internal concept, as in real binaries.
	funcSyms := make(map[string]uint64)
	for _, name := range b.FuncNames() {
		funcSyms[name] = syms[name]
	}
	spec := elff.Spec{
		Kind:    kind,
		Base:    base,
		Entry:   syms["_start"],
		Blob:    img,
		Symbols: funcSyms,
	}
	if end, ok := syms["__code_end"]; ok {
		spec.CodeSize = end - base
	}
	if kind == elff.KindShared {
		spec.Entry = 0
	}
	if mutate != nil {
		mutate(&spec, syms)
	}
	data, err := elff.Write(spec)
	if err != nil {
		t.Fatalf("testbin: write: %v", err)
	}
	bin, err := elff.Read(data)
	if err != nil {
		t.Fatalf("testbin: read: %v", err)
	}
	return bin, syms
}
