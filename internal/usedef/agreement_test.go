package usedef

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/emu"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// TestPropertyUsedefAgreesWithExecution cross-validates the use-define
// chain analysis against concrete execution: on register-only
// straight-line programs, when Resolve succeeds its value set must
// contain the concretely observed %rax.
func TestPropertyUsedefAgreesWithExecution(t *testing.T) {
	regs := []x86.Reg{x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.R10, x86.R14}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bin, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
			b.Func("_start")
			for _, r := range regs {
				b.MovRegImm32(r, uint32(rng.Intn(1<<12)))
			}
			n := 3 + rng.Intn(15)
			for i := 0; i < n; i++ {
				dst := regs[rng.Intn(len(regs))]
				src := regs[rng.Intn(len(regs))]
				switch rng.Intn(7) {
				case 0:
					b.MovRegImm32(dst, uint32(rng.Intn(1<<12)))
				case 1:
					b.MovRegReg(dst, src)
				case 2:
					b.AddRegImm(dst, int32(rng.Intn(128)))
				case 3:
					b.SubRegImm(dst, int32(rng.Intn(128)))
				case 4:
					b.AndRegImm(dst, int32(rng.Intn(1<<12)))
				case 5:
					b.IncReg(dst)
				case 6:
					b.XorRegReg(dst, dst)
				}
			}
			b.Syscall()
			b.MovRegImm32(x86.RAX, 60)
			b.Syscall()
		}, nil)

		m, err := emu.NewProcess(bin, nil)
		if err != nil || m.Run(100_000) != nil || len(m.Trace) == 0 {
			t.Logf("seed %d: emulation failed", seed)
			return false
		}
		concrete := m.Trace[0]

		g, err := cfg.Recover(bin, cfg.Options{})
		if err != nil {
			return false
		}
		site := g.SyscallBlocks()[0]
		fn, ok := g.FuncContaining(site.Addr)
		if !ok {
			return false
		}
		vals, ok := Resolve(Request{
			Fn: fn, Block: site, InsnIdx: len(site.Insns) - 1, Reg: x86.RAX,
		})
		if !ok {
			// Register-only straight-line code must always resolve.
			t.Logf("seed %d: usedef gave up", seed)
			return false
		}
		for _, v := range vals {
			if v == concrete {
				return true
			}
		}
		t.Logf("seed %d: usedef %v misses concrete %d", seed, vals, concrete)
		return false
	}
	conf := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, conf); err != nil {
		t.Fatal(err)
	}
}
