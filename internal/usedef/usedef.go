// Package usedef implements a classic intra-procedural use-define chain
// analysis over registers. It deliberately does not track values through
// memory: that limitation is exactly what the paper identifies as the
// precision/soundness gap of SysFilter-style identification (§2.4), and
// it is what makes this analysis a cheap *first phase* for B-Side's
// wrapper-detection heuristic (§4.4) — a negative answer here means the
// syscall number may come from outside the function.
package usedef

import (
	"sort"
	"sync"

	"bside/internal/cfg"
	"bside/internal/x86"
)

// maxVisits bounds the (block, register) pairs explored per query.
const maxVisits = 4_096

// Request asks for the possible constant values of Reg immediately
// before executing instruction InsnIdx of Block, staying within Fn.
type Request struct {
	Fn      *cfg.Func
	Block   *cfg.Block
	InsnIdx int // resolve the value before this instruction
	Reg     x86.Reg

	// MemRead, when non-nil, extends the domain to 8-byte loads from
	// concrete (RIP-relative) addresses: it returns the quad at the
	// given virtual address and whether the address is covered. The
	// contract is strict — the callback must answer only for IMMUTABLE
	// memory (read-only data sections), because a positive resolve
	// promises the complete runtime value set, and a writable slot can
	// hold anything by the time the load executes. Nil keeps the
	// classic registers-only domain.
	MemRead func(addr uint64) (uint64, bool)
}

// bitset is a growable index bitset: the function-membership and
// (block, register) visited sets are keyed by dense block IDs, so one
// pooled resolver serves any number of queries without map churn.
type bitset struct{ words []uint64 }

func (b *bitset) add(id int) bool {
	if w := id/64 + 1; w > len(b.words) {
		words := make([]uint64, w)
		copy(words, b.words)
		b.words = words
	}
	w, bit := id/64, uint64(1)<<(id%64)
	if b.words[w]&bit != 0 {
		return false
	}
	b.words[w] |= bit
	return true
}

func (b *bitset) has(id int) bool {
	w := id / 64
	return w < len(b.words) && b.words[w]&(1<<(id%64)) != 0
}

func (b *bitset) reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

type resolver struct {
	fn      *cfg.Func
	inFn    bitset // block IDs belonging to fn
	visited bitset // block ID × register pairs already joined
	budget  int
	memRead func(addr uint64) (uint64, bool)
}

var resolverPool = sync.Pool{New: func() any { return new(resolver) }}

// Resolve walks use-define chains backward and returns the sorted set
// of constants Reg may hold at the requested point. ok is false when
// any chain escapes the supported domain (memory operands, partial
// writes, clobbering calls, values flowing in from callers).
func Resolve(req Request) (vals []uint64, ok bool) {
	r := resolverPool.Get().(*resolver)
	r.fn = req.Fn
	r.inFn.reset()
	r.visited.reset()
	r.budget = maxVisits
	r.memRead = req.MemRead
	for _, b := range req.Fn.Blocks {
		r.inFn.add(b.ID)
	}
	set := make(map[uint64]bool)
	resolved := r.resolveAt(req.Block, req.InsnIdx, req.Reg, set)
	r.fn = nil
	r.memRead = nil
	resolverPool.Put(r)
	if !resolved {
		return nil, false
	}
	vals = make([]uint64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals, true
}

// resolveAt scans backward from instruction idx (exclusive) in blk.
func (r *resolver) resolveAt(blk *cfg.Block, idx int, reg x86.Reg, out map[uint64]bool) bool {
	r.budget--
	if r.budget < 0 {
		return false
	}
	for i := idx - 1; i >= 0; i-- {
		in := blk.Insns[i]
		switch in.Op {
		case x86.OpSyscall:
			if reg == x86.RAX || reg == x86.RCX || reg == x86.R11 {
				return false
			}
			continue
		case x86.OpCall, x86.OpCallInd:
			if reg.IsCallerSaved() {
				return false
			}
			continue
		}
		if !writesReg(in, reg) {
			continue
		}
		if in.OpSize < 4 {
			return false // partial register write: out of domain
		}
		// Found the defining instruction; interpret it.
		switch in.Op {
		case x86.OpMov:
			switch in.Src.Kind {
			case x86.KindImm:
				if in.OpSize < 4 {
					return false
				}
				out[uint64(in.Src.Imm)] = true
				return true
			case x86.KindReg:
				return r.resolveAt(blk, i, in.Src.Reg, out)
			case x86.KindMem:
				// A full-width load from a concrete address is in domain
				// exactly when the caller vouches for the memory being
				// immutable (see Request.MemRead).
				if r.memRead != nil && in.OpSize == 8 {
					if ea, ok := in.MemEA(in.Src); ok {
						if v, ok := r.memRead(ea); ok {
							out[v] = true
							return true
						}
					}
				}
				return false
			default:
				return false // memory operand: out of domain
			}
		case x86.OpXor:
			if in.Src.Kind == x86.KindReg && in.Src.Reg == reg {
				out[0] = true
				return true
			}
			return r.transform(blk, i, reg, in, out)
		case x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr, x86.OpShl, x86.OpShr:
			return r.transform(blk, i, reg, in, out)
		case x86.OpInc, x86.OpDec:
			sub := make(map[uint64]bool)
			if !r.resolveAt(blk, i, reg, sub) {
				return false
			}
			for v := range sub {
				if in.Op == x86.OpInc {
					out[v+1] = true
				} else {
					out[v-1] = true
				}
			}
			return true
		case x86.OpLea:
			if ea, ok := in.MemEA(in.Src); ok {
				out[ea] = true
				return true
			}
			return false
		default:
			// pop, movzx with memory, partial writes, ...
			return false
		}
	}

	// Reached the block head without a definition.
	if blk.Addr == r.fn.Entry {
		// The value flows in from the caller: out of the
		// intra-procedural domain. This is the signal wrapper
		// detection's phase 1 looks for.
		return false
	}
	if !r.visited.add(blk.ID*int(x86.NumGPR) + int(reg)) {
		return true // loop back-edge: values join from elsewhere
	}

	any := false
	for _, e := range blk.Preds {
		switch e.Kind {
		case cfg.EdgeFall, cfg.EdgeJump, cfg.EdgeCallFall:
		default:
			continue
		}
		if !r.inFn.has(e.From.ID) {
			continue
		}
		any = true
		if !r.resolveAt(e.From, len(e.From.Insns), reg, out) {
			return false
		}
	}
	// A block with no intra-function predecessors that is not the entry
	// is typically an indirect-call target; its inputs are unknown.
	return any
}

// transform applies an ALU instruction with an immediate operand to the
// recursively-resolved prior values.
func (r *resolver) transform(blk *cfg.Block, i int, reg x86.Reg, in x86.Inst, out map[uint64]bool) bool {
	if in.Src.Kind != x86.KindImm {
		return false
	}
	imm := uint64(in.Src.Imm)
	sub := make(map[uint64]bool)
	if !r.resolveAt(blk, i, reg, sub) {
		return false
	}
	for v := range sub {
		switch in.Op {
		case x86.OpAdd:
			out[v+imm] = true
		case x86.OpSub:
			out[v-imm] = true
		case x86.OpAnd:
			out[v&imm] = true
		case x86.OpOr:
			out[v|imm] = true
		case x86.OpXor:
			out[v^imm] = true
		case x86.OpShl:
			out[v<<(imm&63)] = true
		case x86.OpShr:
			out[v>>(imm&63)] = true
		default:
			return false
		}
	}
	return true
}

// writesReg reports whether in's destination is exactly the full (or
// zero-extending 32-bit) register reg.
func writesReg(in x86.Inst, reg x86.Reg) bool {
	switch in.Op {
	case x86.OpMov, x86.OpMovzx, x86.OpMovsx, x86.OpMovsxd, x86.OpLea,
		x86.OpXor, x86.OpAdd, x86.OpSub, x86.OpAnd, x86.OpOr,
		x86.OpShl, x86.OpShr, x86.OpInc, x86.OpDec, x86.OpPop:
		return in.Dst.Kind == x86.KindReg && in.Dst.Reg == reg
	case x86.OpCdqe:
		return reg == x86.RAX
	}
	return false
}
