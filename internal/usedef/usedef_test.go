package usedef

import (
	"reflect"
	"testing"

	"bside/internal/asm"
	"bside/internal/cfg"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// setup builds a program and returns its graph and the function named
// "fn" with its syscall block.
func setup(t *testing.T, build func(b *asm.Builder)) (*cfg.Graph, *cfg.Func, *cfg.Block) {
	t.Helper()
	bin, syms := testbin.Build(t, elff.KindStatic, build, nil)
	g, err := cfg.Recover(bin, cfg.Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	fn, ok := g.FuncByEntry(syms["fn"])
	if !ok {
		t.Fatal("no fn function")
	}
	for _, blk := range fn.Blocks {
		if blk.EndsInSyscall() {
			return g, fn, blk
		}
	}
	t.Fatal("no syscall block in fn")
	return nil, nil, nil
}

func resolveRAX(t *testing.T, fn *cfg.Func, site *cfg.Block) ([]uint64, bool) {
	t.Helper()
	return Resolve(Request{Fn: fn, Block: site, InsnIdx: len(site.Insns) - 1, Reg: x86.RAX})
}

func TestResolveImmediate(t *testing.T) {
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RAX, 39)
		b.Syscall()
		b.Ret()
	})
	vals, ok := resolveRAX(t, fn, site)
	if !ok || !reflect.DeepEqual(vals, []uint64{39}) {
		t.Fatalf("vals=%v ok=%v", vals, ok)
	}
}

func TestResolveThroughRegisterCopyAndBranches(t *testing.T) {
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RBX, 2)
		b.CmpRegImm(x86.RDI, 0)
		b.Jcc(x86.CondE, "use")
		b.MovRegImm32(x86.RBX, 3)
		b.Label("use")
		b.MovRegReg(x86.RAX, x86.RBX)
		b.Syscall()
		b.Ret()
	})
	vals, ok := resolveRAX(t, fn, site)
	if !ok || !reflect.DeepEqual(vals, []uint64{2, 3}) {
		t.Fatalf("vals=%v ok=%v", vals, ok)
	}
}

func TestResolveZeroingIdiomAndArith(t *testing.T) {
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.XorRegReg32(x86.RAX, x86.RAX)
		b.AddRegImm(x86.RAX, 9)
		b.IncReg(x86.RAX)
		b.Syscall()
		b.Ret()
	})
	vals, ok := resolveRAX(t, fn, site)
	if !ok || !reflect.DeepEqual(vals, []uint64{10}) {
		t.Fatalf("vals=%v ok=%v", vals, ok)
	}
}

func TestMemoryOperandFails(t *testing.T) {
	// The defining move loads from the stack: out of domain — exactly
	// the SysFilter blind spot the paper describes.
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegMem(x86.RAX, x86.Mem{Base: x86.RSP, Index: x86.RegNone, Scale: 1, Disp: 8})
		b.Syscall()
		b.Ret()
	})
	if vals, ok := resolveRAX(t, fn, site); ok {
		t.Fatalf("memory operand must fail, got %v", vals)
	}
}

func TestValueFromCallerFails(t *testing.T) {
	// Wrapper shape: rax := rdi, rdi set by the caller. Phase-1 must
	// say "maybe wrapper" (not resolvable).
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RDI, 1)
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	})
	if vals, ok := resolveRAX(t, fn, site); ok {
		t.Fatalf("caller-provided value must fail, got %v", vals)
	}
}

func TestCallClobberFails(t *testing.T) {
	// A call between the definition and the use clobbers caller-saved
	// rax.
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("helper")
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RAX, 5)
		b.CallLabel("helper")
		b.Syscall()
		b.Ret()
	})
	if vals, ok := resolveRAX(t, fn, site); ok {
		t.Fatalf("call clobber must fail, got %v", vals)
	}
}

func TestCalleeSavedSurvivesCall(t *testing.T) {
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("helper")
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RBX, 7)
		b.CallLabel("helper")
		b.MovRegReg(x86.RAX, x86.RBX)
		b.Syscall()
		b.Ret()
	})
	vals, ok := resolveRAX(t, fn, site)
	if !ok || !reflect.DeepEqual(vals, []uint64{7}) {
		t.Fatalf("vals=%v ok=%v", vals, ok)
	}
}

func TestLoopBackEdgeTerminates(t *testing.T) {
	_, fn, site := setup(t, func(b *asm.Builder) {
		b.Func("_start")
		b.CallLabel("fn")
		b.Ret()
		b.Func("fn")
		b.MovRegImm32(x86.RAX, 4)
		b.Label("top")
		b.DecReg(x86.RCX)
		b.CmpRegImm(x86.RCX, 0)
		b.Jcc(x86.CondNE, "top")
		b.Syscall()
		b.Ret()
	})
	vals, ok := resolveRAX(t, fn, site)
	if !ok || !reflect.DeepEqual(vals, []uint64{4}) {
		t.Fatalf("vals=%v ok=%v", vals, ok)
	}
}
