package x86

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Decode errors.
var (
	// ErrTruncated means the byte stream ended in the middle of an
	// instruction.
	ErrTruncated = errors.New("x86: truncated instruction")
	// ErrUnsupported means the bytes encode an instruction outside the
	// supported subset.
	ErrUnsupported = errors.New("x86: unsupported instruction")
)

// rex holds decoded REX prefix bits.
type rex struct {
	present    bool
	w, r, x, b bool
}

type cursor struct {
	b    []byte
	pos  int
	addr uint64
}

func (c *cursor) u8() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, ErrTruncated
	}
	v := c.b[c.pos]
	c.pos++
	return v, nil
}

func (c *cursor) i8() (int8, error) {
	v, err := c.u8()
	return int8(v), err
}

func (c *cursor) i32() (int32, error) {
	if c.pos+4 > len(c.b) {
		return 0, ErrTruncated
	}
	v := int32(binary.LittleEndian.Uint32(c.b[c.pos:]))
	c.pos += 4
	return v, nil
}

func (c *cursor) i64() (int64, error) {
	if c.pos+8 > len(c.b) {
		return 0, ErrTruncated
	}
	v := int64(binary.LittleEndian.Uint64(c.b[c.pos:]))
	c.pos += 8
	return v, nil
}

// Decode decodes a single instruction starting at b[0], which is mapped
// at virtual address addr. It returns the decoded instruction; on error
// the returned instruction is zero-valued except Addr.
func Decode(b []byte, addr uint64) (Inst, error) {
	c := &cursor{b: b, addr: addr}
	inst := Inst{Addr: addr}

	var rx rex
	var opsize66, repF3 bool

	// Prefix loop.
	var op byte
	for {
		v, err := c.u8()
		if err != nil {
			return inst, err
		}
		switch {
		case v >= 0x40 && v <= 0x4F:
			rx = rex{present: true, w: v&8 != 0, r: v&4 != 0, x: v&2 != 0, b: v&1 != 0}
			continue
		case v == 0x66:
			opsize66 = true
			continue
		case v == 0xF3:
			repF3 = true
			continue
		case v == 0xF2, v == 0x2E, v == 0x3E, v == 0x26, v == 0x36, v == 0x64, v == 0x65, v == 0x67:
			// Ignored prefixes (segment overrides, addr-size, repne).
			continue
		}
		op = v
		break
	}

	size := uint8(4)
	if rx.w {
		size = 8
	} else if opsize66 {
		size = 2
	}
	inst.OpSize = size

	err := decodeOpcode(c, &inst, op, rx, size, repF3)
	if err != nil {
		return Inst{Addr: addr}, err
	}
	if c.pos > 15 {
		return Inst{Addr: addr}, fmt.Errorf("%w: length %d exceeds 15 bytes", ErrUnsupported, c.pos)
	}
	inst.Len = uint8(c.pos)
	return inst, nil
}

// aluOps maps the three-bit /digit of immediate group 1 to operations.
var grp1Ops = [8]Op{OpAdd, OpOr, OpInvalid, OpInvalid, OpAnd, OpSub, OpInvalid, OpCmp}

func decodeOpcode(c *cursor, inst *Inst, op byte, rx rex, size uint8, repF3 bool) error {
	switch {
	case op == 0x0F:
		return decode0F(c, inst, rx, size, repF3)

	// ALU r/m, r and r, r/m families.
	case op == 0x00, op == 0x01, op == 0x02, op == 0x03,
		op == 0x08, op == 0x09, op == 0x0A, op == 0x0B,
		op == 0x20, op == 0x21, op == 0x22, op == 0x23,
		op == 0x28, op == 0x29, op == 0x2A, op == 0x2B,
		op == 0x30, op == 0x31, op == 0x32, op == 0x33,
		op == 0x38, op == 0x39, op == 0x3A, op == 0x3B,
		op == 0x88, op == 0x89, op == 0x8A, op == 0x8B:
		var kind Op
		switch op & 0xF8 {
		case 0x00:
			kind = OpAdd
		case 0x08:
			kind = OpOr
		case 0x20:
			kind = OpAnd
		case 0x28:
			kind = OpSub
		case 0x30:
			kind = OpXor
		case 0x38:
			kind = OpCmp
		case 0x88:
			kind = OpMov
		}
		byteForm := op&1 == 0
		if byteForm {
			inst.OpSize = 1
		}
		regToRM := op&2 == 0
		reg, rm, err := decodeModRM(c, rx)
		if err != nil {
			return err
		}
		inst.Op = kind
		if regToRM {
			inst.Dst, inst.Src = rm, RegOp(reg)
		} else {
			inst.Dst, inst.Src = RegOp(reg), rm
		}
		return nil

	case op >= 0x50 && op <= 0x57:
		inst.Op = OpPush
		inst.OpSize = 8
		inst.Dst = RegOp(regExt(op-0x50, rx.b))
		return nil

	case op >= 0x58 && op <= 0x5F:
		inst.Op = OpPop
		inst.OpSize = 8
		inst.Dst = RegOp(regExt(op-0x58, rx.b))
		return nil

	case op == 0x63: // movsxd r64, r/m32
		reg, rm, err := decodeModRM(c, rx)
		if err != nil {
			return err
		}
		inst.Op = OpMovsxd
		inst.OpSize = 8
		inst.Dst, inst.Src = RegOp(reg), rm
		return nil

	case op == 0x68: // push imm32
		v, err := c.i32()
		if err != nil {
			return err
		}
		inst.Op = OpPush
		inst.OpSize = 8
		inst.Dst = ImmOp(int64(v))
		return nil

	case op == 0x6A: // push imm8
		v, err := c.i8()
		if err != nil {
			return err
		}
		inst.Op = OpPush
		inst.OpSize = 8
		inst.Dst = ImmOp(int64(v))
		return nil

	case op >= 0x70 && op <= 0x7F: // jcc rel8
		v, err := c.i8()
		if err != nil {
			return err
		}
		inst.Op = OpJcc
		inst.Cond = Cond(op - 0x70)
		inst.Dst = ImmOp(int64(c.addr) + int64(c.pos) + int64(v))
		return nil

	case op == 0x80, op == 0x81, op == 0x83: // group 1 imm
		reg, rm, digit, err := decodeModRMDigit(c, rx)
		if err != nil {
			return err
		}
		_ = reg
		kind := grp1Ops[digit]
		if kind == OpInvalid {
			return fmt.Errorf("%w: group1 /%d", ErrUnsupported, digit)
		}
		var imm int64
		if op == 0x81 {
			v, err := c.i32()
			if err != nil {
				return err
			}
			imm = int64(v)
		} else {
			v, err := c.i8()
			if err != nil {
				return err
			}
			imm = int64(v)
		}
		if op == 0x80 {
			inst.OpSize = 1
		}
		inst.Op = kind
		inst.Dst, inst.Src = rm, ImmOp(imm)
		return nil

	case op == 0x84, op == 0x85: // test r/m, r
		if op == 0x84 {
			inst.OpSize = 1
		}
		reg, rm, err := decodeModRM(c, rx)
		if err != nil {
			return err
		}
		inst.Op = OpTest
		inst.Dst, inst.Src = rm, RegOp(reg)
		return nil

	case op == 0x8D: // lea
		reg, rm, err := decodeModRM(c, rx)
		if err != nil {
			return err
		}
		if rm.Kind != KindMem {
			return fmt.Errorf("%w: lea with register source", ErrUnsupported)
		}
		inst.Op = OpLea
		inst.Dst, inst.Src = RegOp(reg), rm
		return nil

	case op == 0x90:
		inst.Op = OpNop
		return nil

	case op == 0x98:
		inst.Op = OpCdqe
		return nil

	case op >= 0xB8 && op <= 0xBF: // mov r, imm32/imm64
		r := regExt(op-0xB8, rx.b)
		if rx.w {
			v, err := c.i64()
			if err != nil {
				return err
			}
			inst.Op = OpMov
			inst.Dst, inst.Src = RegOp(r), ImmOp(v)
			return nil
		}
		v, err := c.i32()
		if err != nil {
			return err
		}
		inst.Op = OpMov
		// mov r32, imm32 zero-extends; keep the unsigned 32-bit value.
		inst.Dst, inst.Src = RegOp(r), ImmOp(int64(uint32(v)))
		return nil

	case op == 0xC1: // group 2 shift imm8
		_, rm, digit, err := decodeModRMDigit(c, rx)
		if err != nil {
			return err
		}
		v, err := c.i8()
		if err != nil {
			return err
		}
		switch digit {
		case 4:
			inst.Op = OpShl
		case 5:
			inst.Op = OpShr
		default:
			return fmt.Errorf("%w: group2 /%d", ErrUnsupported, digit)
		}
		inst.Dst, inst.Src = rm, ImmOp(int64(uint8(v)))
		return nil

	case op == 0xC3:
		inst.Op = OpRet
		return nil

	case op == 0xC6, op == 0xC7: // mov r/m, imm
		_, rm, digit, err := decodeModRMDigit(c, rx)
		if err != nil {
			return err
		}
		if digit != 0 {
			return fmt.Errorf("%w: C6/C7 /%d", ErrUnsupported, digit)
		}
		var imm int64
		if op == 0xC6 {
			inst.OpSize = 1
			v, err := c.i8()
			if err != nil {
				return err
			}
			imm = int64(v)
		} else {
			v, err := c.i32()
			if err != nil {
				return err
			}
			imm = int64(v) // sign-extended to OpSize
		}
		inst.Op = OpMov
		inst.Dst, inst.Src = rm, ImmOp(imm)
		return nil

	case op == 0xC9:
		inst.Op = OpLeave
		return nil

	case op == 0xCC:
		inst.Op = OpInt3
		return nil

	case op == 0xE8: // call rel32
		v, err := c.i32()
		if err != nil {
			return err
		}
		inst.Op = OpCall
		inst.Dst = ImmOp(int64(c.addr) + int64(c.pos) + int64(v))
		return nil

	case op == 0xE9: // jmp rel32
		v, err := c.i32()
		if err != nil {
			return err
		}
		inst.Op = OpJmp
		inst.Dst = ImmOp(int64(c.addr) + int64(c.pos) + int64(v))
		return nil

	case op == 0xEB: // jmp rel8
		v, err := c.i8()
		if err != nil {
			return err
		}
		inst.Op = OpJmp
		inst.Dst = ImmOp(int64(c.addr) + int64(c.pos) + int64(v))
		return nil

	case op == 0xF4:
		inst.Op = OpHlt
		return nil

	case op == 0xFF: // group 5
		_, rm, digit, err := decodeModRMDigit(c, rx)
		if err != nil {
			return err
		}
		switch digit {
		case 0:
			inst.Op = OpInc
			inst.Dst = rm
		case 1:
			inst.Op = OpDec
			inst.Dst = rm
		case 2:
			inst.Op = OpCallInd
			inst.OpSize = 8
			inst.Dst = rm
		case 4:
			inst.Op = OpJmpInd
			inst.OpSize = 8
			inst.Dst = rm
		case 6:
			inst.Op = OpPush
			inst.OpSize = 8
			inst.Dst = rm
		default:
			return fmt.Errorf("%w: group5 /%d", ErrUnsupported, digit)
		}
		return nil
	}
	return fmt.Errorf("%w: opcode %#02x", ErrUnsupported, op)
}

func decode0F(c *cursor, inst *Inst, rx rex, size uint8, repF3 bool) error {
	op, err := c.u8()
	if err != nil {
		return err
	}
	switch {
	case op == 0x05:
		inst.Op = OpSyscall
		return nil
	case op == 0x0B:
		inst.Op = OpUd2
		return nil
	case op == 0x1E && repF3:
		// endbr64 is F3 0F 1E FA.
		v, err := c.u8()
		if err != nil {
			return err
		}
		if v != 0xFA {
			return fmt.Errorf("%w: F3 0F 1E %#02x", ErrUnsupported, v)
		}
		inst.Op = OpEndbr64
		return nil
	case op == 0x1F: // multi-byte nop
		_, _, _, err := decodeModRMDigit(c, rx)
		if err != nil {
			return err
		}
		inst.Op = OpNop
		inst.Dst, inst.Src = Operand{}, Operand{}
		return nil
	case op >= 0x80 && op <= 0x8F: // jcc rel32
		v, err := c.i32()
		if err != nil {
			return err
		}
		inst.Op = OpJcc
		inst.Cond = Cond(op - 0x80)
		inst.Dst = ImmOp(int64(c.addr) + int64(c.pos) + int64(v))
		return nil
	case op == 0xB6, op == 0xB7, op == 0xBE, op == 0xBF:
		reg, rm, err := decodeModRM(c, rx)
		if err != nil {
			return err
		}
		if op == 0xB6 || op == 0xB7 {
			inst.Op = OpMovzx
		} else {
			inst.Op = OpMovsx
		}
		inst.Dst, inst.Src = RegOp(reg), rm
		return nil
	}
	return fmt.Errorf("%w: opcode 0f %#02x", ErrUnsupported, op)
}

func regExt(low byte, ext bool) Reg {
	r := Reg(low & 7)
	if ext {
		r += 8
	}
	return r
}

// decodeModRM decodes a ModRM byte (plus SIB/displacement) and returns
// the reg field as a register and the r/m field as an operand.
func decodeModRM(c *cursor, rx rex) (Reg, Operand, error) {
	reg, rm, _, err := decodeModRMDigit(c, rx)
	return reg, rm, err
}

// decodeModRMDigit is decodeModRM but also exposes the raw reg field
// value (the "/digit" of group opcodes).
func decodeModRMDigit(c *cursor, rx rex) (Reg, Operand, byte, error) {
	modrm, err := c.u8()
	if err != nil {
		return 0, Operand{}, 0, err
	}
	mod := modrm >> 6
	regField := (modrm >> 3) & 7
	rmField := modrm & 7
	reg := regExt(regField, rx.r)

	if mod == 3 {
		return reg, RegOp(regExt(rmField, rx.b)), regField, nil
	}

	m := Mem{Base: RegNone, Index: RegNone, Scale: 1}

	if rmField == 4 { // SIB follows
		sib, err := c.u8()
		if err != nil {
			return 0, Operand{}, 0, err
		}
		scaleBits := sib >> 6
		indexField := (sib >> 3) & 7
		baseField := sib & 7
		m.Scale = 1 << scaleBits
		idx := regExt(indexField, rx.x)
		if idx != RSP { // index=100 without REX.X means "no index"
			m.Index = idx
		} else {
			m.Index = RegNone
			m.Scale = 1
		}
		if baseField == 5 && mod == 0 {
			// disp32 with no base
			d, err := c.i32()
			if err != nil {
				return 0, Operand{}, 0, err
			}
			m.Disp = d
			return reg, MemOp(m), regField, nil
		}
		m.Base = regExt(baseField, rx.b)
	} else if rmField == 5 && mod == 0 {
		// RIP-relative disp32
		d, err := c.i32()
		if err != nil {
			return 0, Operand{}, 0, err
		}
		m.Base = RIP
		m.Disp = d
		return reg, MemOp(m), regField, nil
	} else {
		m.Base = regExt(rmField, rx.b)
	}

	switch mod {
	case 0:
		// no displacement
	case 1:
		d, err := c.i8()
		if err != nil {
			return 0, Operand{}, 0, err
		}
		m.Disp = int32(d)
	case 2:
		d, err := c.i32()
		if err != nil {
			return 0, Operand{}, 0, err
		}
		m.Disp = d
	}
	return reg, MemOp(m), regField, nil
}
