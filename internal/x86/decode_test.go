package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeKnownBytes checks hand-verified encodings against the
// decoder (spot checks independent of our own assembler).
func TestDecodeKnownBytes(t *testing.T) {
	cases := []struct {
		name  string
		bytes []byte
		want  string
	}{
		{"syscall", []byte{0x0F, 0x05}, "syscall"},
		{"mov eax, 60", []byte{0xB8, 0x3C, 0, 0, 0}, "mov"},
		{"xor edi,edi", []byte{0x31, 0xFF}, "xor"},
		{"mov rax,rdi", []byte{0x48, 0x89, 0xF8}, "mov"},
		{"mov rax,[rsp+8]", []byte{0x48, 0x8B, 0x44, 0x24, 0x08}, "mov"},
		{"lea rsi,[rip+0x10]", []byte{0x48, 0x8D, 0x35, 0x10, 0, 0, 0}, "lea"},
		{"call rel32", []byte{0xE8, 0x10, 0, 0, 0}, "call"},
		{"ret", []byte{0xC3}, "ret"},
		{"push rbp", []byte{0x55}, "push"},
		{"endbr64", []byte{0xF3, 0x0F, 0x1E, 0xFA}, "endbr64"},
		{"jne rel8", []byte{0x75, 0x02}, "j"},
		{"nopw 0F1F", []byte{0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00}, "nop"},
	}
	for _, tc := range cases {
		inst, err := Decode(tc.bytes, 0x1000)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if int(inst.Len) != len(tc.bytes) {
			t.Errorf("%s: len %d want %d", tc.name, inst.Len, len(tc.bytes))
		}
		if inst.Op.String()[:1] != tc.want[:1] {
			t.Errorf("%s: got %v", tc.name, inst)
		}
	}
}

func TestDecodeOperandDetails(t *testing.T) {
	// mov rax, [rsp+8]
	inst, err := Decode([]byte{0x48, 0x8B, 0x44, 0x24, 0x08}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Dst.Reg != RAX || inst.Src.Mem.Base != RSP || inst.Src.Mem.Disp != 8 || inst.OpSize != 8 {
		t.Fatalf("got %v", inst)
	}

	// mov eax, 1 — zero extension semantics flagged via OpSize 4.
	inst, err = Decode([]byte{0xB8, 0x01, 0, 0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.OpSize != 4 || inst.Src.Imm != 1 {
		t.Fatalf("got %v size=%d", inst, inst.OpSize)
	}

	// jcc target arithmetic: 75 FE at 0x100 -> jne 0x100.
	inst, err = Decode([]byte{0x75, 0xFE}, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if tgt, ok := inst.BranchTarget(); !ok || tgt != 0x100 {
		t.Fatalf("target %#x", tgt)
	}

	// call -5 at 0: E8 FB FF FF FF -> target 0.
	inst, err = Decode([]byte{0xE8, 0xFB, 0xFF, 0xFF, 0xFF}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt, _ := inst.BranchTarget(); tgt != 0 {
		t.Fatalf("target %#x", tgt)
	}

	// RIP-relative EA: lea rsi, [rip+0x10] at 0x2000, len 7 -> 0x2017.
	inst, err = Decode([]byte{0x48, 0x8D, 0x35, 0x10, 0, 0, 0}, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if ea, ok := inst.MemEA(inst.Src); !ok || ea != 0x2017 {
		t.Fatalf("EA %#x", ea)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil, 0); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := Decode([]byte{0x48}, 0); err == nil {
		t.Fatal("lone REX must error")
	}
	if _, err := Decode([]byte{0xE8, 0x01}, 0); err == nil {
		t.Fatal("truncated call must error")
	}
	// An opcode outside the subset.
	if _, err := Decode([]byte{0xD9, 0xC0}, 0); err == nil {
		t.Fatal("x87 opcode must be unsupported")
	}
}

// TestDecodeRandomNeverPanics hammers the decoder with random bytes; it
// must return errors, never panic, and never report a length beyond the
// input.
func TestDecodeRandomNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 16)
	for i := 0; i < 50000; i++ {
		n := 1 + rng.Intn(15)
		for j := 0; j < n; j++ {
			buf[j] = byte(rng.Intn(256))
		}
		inst, err := Decode(buf[:n], uint64(i))
		if err != nil {
			continue
		}
		if int(inst.Len) > n || inst.Len == 0 {
			t.Fatalf("bad length %d for %x", inst.Len, buf[:n])
		}
	}
}

func TestTerminatorsAndCalls(t *testing.T) {
	term := []Op{OpJmp, OpJmpInd, OpJcc, OpRet, OpUd2, OpHlt, OpInt3}
	for _, op := range term {
		if !(Inst{Op: op}).IsTerminator() {
			t.Errorf("%v must terminate a block", op)
		}
	}
	if (Inst{Op: OpCall}).IsTerminator() {
		t.Error("call must not terminate a block")
	}
	if !(Inst{Op: OpCall}).IsCall() || !(Inst{Op: OpCallInd}).IsCall() {
		t.Error("call ops must report IsCall")
	}
	if (Inst{Op: OpSyscall}).IsCall() {
		t.Error("syscall is not a call")
	}
}

func TestRegisterProperties(t *testing.T) {
	callerSaved := map[Reg]bool{RAX: true, RCX: true, RDX: true, RSI: true, RDI: true,
		R8: true, R9: true, R10: true, R11: true}
	for r := Reg(0); r < NumGPR; r++ {
		if got := r.IsCallerSaved(); got != callerSaved[r] {
			t.Errorf("%v caller-saved = %v", r, got)
		}
		if !r.Valid() {
			t.Errorf("%v must be valid", r)
		}
	}
	if RIP.Valid() || RegNone.Valid() {
		t.Error("pseudo registers must be invalid")
	}
	if ParamRegs != [6]Reg{RDI, RSI, RDX, RCX, R8, R9} {
		t.Error("SysV parameter order")
	}
}

func TestStringFormatting(t *testing.T) {
	inst, err := Decode([]byte{0x48, 0x8B, 0x44, 0x24, 0x08}, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	m := Mem{Base: RAX, Index: RCX, Scale: 4, Disp: -8}
	if m.String() == "" {
		t.Fatal("empty Mem string")
	}
	if (Mem{Base: RegNone, Index: RegNone, Disp: 0}).String() != "[0x0]" {
		t.Fatalf("abs mem: %s", (Mem{Base: RegNone, Index: RegNone}).String())
	}
}
