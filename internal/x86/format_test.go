package x86

import (
	"strings"
	"testing"
)

// TestStringAllOps exercises the formatter across every supported
// operation so listings never render empty or panic.
func TestStringAllOps(t *testing.T) {
	mem := MemOp(Mem{Base: RAX, Index: RCX, Scale: 4, Disp: -8})
	cases := []Inst{
		{Op: OpMov, Dst: RegOp(RAX), Src: ImmOp(60), OpSize: 4},
		{Op: OpMov, Dst: mem, Src: RegOp(RBX), OpSize: 8},
		{Op: OpMovzx, Dst: RegOp(RAX), Src: mem, OpSize: 4},
		{Op: OpMovsx, Dst: RegOp(RAX), Src: mem, OpSize: 8},
		{Op: OpMovsxd, Dst: RegOp(RAX), Src: RegOp(RDI), OpSize: 8},
		{Op: OpLea, Dst: RegOp(RSI), Src: mem, OpSize: 8},
		{Op: OpXor, Dst: RegOp(RDI), Src: RegOp(RDI), OpSize: 4},
		{Op: OpAdd, Dst: RegOp(RSP), Src: ImmOp(16), OpSize: 8},
		{Op: OpSub, Dst: RegOp(RSP), Src: ImmOp(16), OpSize: 8},
		{Op: OpAnd, Dst: RegOp(RDX), Src: ImmOp(0xFF), OpSize: 8},
		{Op: OpOr, Dst: RegOp(RDX), Src: ImmOp(1), OpSize: 8},
		{Op: OpCmp, Dst: RegOp(RCX), Src: ImmOp(0), OpSize: 8},
		{Op: OpTest, Dst: RegOp(RAX), Src: RegOp(RAX), OpSize: 8},
		{Op: OpShl, Dst: RegOp(RAX), Src: ImmOp(3), OpSize: 8},
		{Op: OpShr, Dst: RegOp(RAX), Src: ImmOp(1), OpSize: 8},
		{Op: OpInc, Dst: RegOp(R12), OpSize: 8},
		{Op: OpDec, Dst: RegOp(R12), OpSize: 8},
		{Op: OpPush, Dst: RegOp(RBP), OpSize: 8},
		{Op: OpPop, Dst: RegOp(RBP), OpSize: 8},
		{Op: OpCall, Dst: ImmOp(0x401000)},
		{Op: OpCallInd, Dst: RegOp(RAX)},
		{Op: OpJmp, Dst: ImmOp(0x401000)},
		{Op: OpJmpInd, Dst: mem},
		{Op: OpJcc, Cond: CondNE, Dst: ImmOp(0x401000)},
		{Op: OpRet},
		{Op: OpLeave},
		{Op: OpSyscall},
		{Op: OpNop},
		{Op: OpEndbr64},
		{Op: OpUd2},
		{Op: OpInt3},
		{Op: OpHlt},
		{Op: OpCdqe},
	}
	for _, in := range cases {
		s := in.String()
		if s == "" || strings.Contains(s, "(invalid)") {
			t.Errorf("op %v renders %q", in.Op, s)
		}
	}
	// Condition suffixes must all render.
	for c := Cond(0); c <= CondG; c++ {
		if c.String() == "" {
			t.Errorf("cond %d empty", c)
		}
	}
	if (Inst{Op: OpInvalid}).String() == "" {
		t.Error("invalid op must still render")
	}
	if Op(200).String() == "" || Cond(200).String() == "" || Reg(200).String() == "" {
		t.Error("out-of-range enums must render")
	}
}

func TestBranchTargetNonBranches(t *testing.T) {
	for _, op := range []Op{OpMov, OpRet, OpSyscall, OpCallInd, OpJmpInd} {
		if _, ok := (Inst{Op: op}).BranchTarget(); ok {
			t.Errorf("%v must not report a branch target", op)
		}
	}
}

func TestMemEANonRIP(t *testing.T) {
	in := Inst{Op: OpMov, Dst: RegOp(RAX),
		Src: MemOp(Mem{Base: RBX, Index: RegNone, Scale: 1, Disp: 8})}
	if _, ok := in.MemEA(in.Src); ok {
		t.Error("non-RIP memory operand must not have a static EA")
	}
	if _, ok := in.MemEA(in.Dst); ok {
		t.Error("register operand must not have an EA")
	}
}
