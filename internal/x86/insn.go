package x86

import (
	"fmt"
	"strings"
)

// Op enumerates the operations the decoder understands.
type Op uint8

// Supported operations.
const (
	OpInvalid Op = iota
	OpMov
	OpMovzx
	OpMovsx
	OpMovsxd
	OpLea
	OpXor
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpCmp
	OpTest
	OpShl
	OpShr
	OpInc
	OpDec
	OpPush
	OpPop
	OpCall    // direct near call, target in Dst (immediate absolute address)
	OpCallInd // indirect call through register or memory
	OpJmp     // direct jump
	OpJmpInd  // indirect jump
	OpJcc     // conditional jump, condition in Cond
	OpRet
	OpLeave
	OpSyscall
	OpNop
	OpEndbr64
	OpUd2
	OpInt3
	OpHlt
	OpCdqe
)

var opNames = [...]string{
	OpInvalid: "(invalid)",
	OpMov:     "mov",
	OpMovzx:   "movzx",
	OpMovsx:   "movsx",
	OpMovsxd:  "movsxd",
	OpLea:     "lea",
	OpXor:     "xor",
	OpAdd:     "add",
	OpSub:     "sub",
	OpAnd:     "and",
	OpOr:      "or",
	OpCmp:     "cmp",
	OpTest:    "test",
	OpShl:     "shl",
	OpShr:     "shr",
	OpInc:     "inc",
	OpDec:     "dec",
	OpPush:    "push",
	OpPop:     "pop",
	OpCall:    "call",
	OpCallInd: "call",
	OpJmp:     "jmp",
	OpJmpInd:  "jmp",
	OpJcc:     "j",
	OpRet:     "ret",
	OpLeave:   "leave",
	OpSyscall: "syscall",
	OpNop:     "nop",
	OpEndbr64: "endbr64",
	OpUd2:     "ud2",
	OpInt3:    "int3",
	OpHlt:     "hlt",
	OpCdqe:    "cdqe",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond enumerates condition codes for Jcc, in hardware encoding order
// (the low nibble of the 0F 8x opcode).
type Cond uint8

// Condition codes.
const (
	CondO  Cond = 0x0 // overflow
	CondNO Cond = 0x1
	CondB  Cond = 0x2 // below (unsigned <)
	CondAE Cond = 0x3
	CondE  Cond = 0x4 // equal / zero
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8 // sign
	CondNS Cond = 0x9
	CondP  Cond = 0xA
	CondNP Cond = 0xB
	CondL  Cond = 0xC // less (signed <)
	CondGE Cond = 0xD
	CondLE Cond = 0xE
	CondG  Cond = 0xF
)

var condNames = [...]string{
	CondO: "o", CondNO: "no", CondB: "b", CondAE: "ae",
	CondE: "e", CondNE: "ne", CondBE: "be", CondA: "a",
	CondS: "s", CondNS: "ns", CondP: "p", CondNP: "np",
	CondL: "l", CondGE: "ge", CondLE: "le", CondG: "g",
}

// String returns the condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cc(%d)", uint8(c))
}

// OperandKind discriminates the Operand union.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
)

// Mem describes a memory operand: [Base + Index*Scale + Disp], or a
// RIP-relative reference when Base == RIP (the effective address is then
// the address of the following instruction plus Disp).
type Mem struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; meaningful only when Index != RegNone
	Disp  int32
}

// IsRIPRel reports whether the operand is RIP-relative.
func (m Mem) IsRIPRel() bool { return m.Base == RIP }

// String renders the memory operand in Intel-like syntax.
func (m Mem) String() string {
	var b strings.Builder
	b.WriteByte('[')
	wrote := false
	if m.Base != RegNone {
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.Index != RegNone {
		if wrote {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s*%d", m.Index, m.Scale)
		wrote = true
	}
	if m.Disp != 0 || !wrote {
		if wrote && m.Disp >= 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%#x", m.Disp)
	}
	b.WriteByte(']')
	return b.String()
}

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  Mem
}

// RegOp builds a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp builds an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp builds a memory operand.
func MemOp(m Mem) Operand { return Operand{Kind: KindMem, Mem: m} }

// String renders the operand.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%#x", o.Imm)
	case KindMem:
		return o.Mem.String()
	default:
		return "<none>"
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Addr   uint64 // virtual address of the first byte
	Len    uint8  // encoded length in bytes
	Op     Op
	Cond   Cond    // valid when Op == OpJcc
	Dst    Operand // first operand (destination for two-operand forms)
	Src    Operand // second operand
	OpSize uint8   // effective operand size in bytes: 1, 2, 4 or 8
}

// Next returns the address of the instruction following i.
func (i Inst) Next() uint64 { return i.Addr + uint64(i.Len) }

// BranchTarget returns the absolute target of a direct call/jmp/jcc and
// true, or 0 and false for any other instruction.
func (i Inst) BranchTarget() (uint64, bool) {
	switch i.Op {
	case OpCall, OpJmp, OpJcc:
		return uint64(i.Dst.Imm), true
	}
	return 0, false
}

// MemEA returns the concrete effective address of a RIP-relative memory
// operand and true; for all other operand shapes it returns false.
func (i Inst) MemEA(o Operand) (uint64, bool) {
	if o.Kind != KindMem || !o.Mem.IsRIPRel() {
		return 0, false
	}
	return i.Next() + uint64(int64(o.Mem.Disp)), true
}

// IsTerminator reports whether the instruction ends a basic block.
func (i Inst) IsTerminator() bool {
	switch i.Op {
	case OpJmp, OpJmpInd, OpJcc, OpRet, OpUd2, OpHlt, OpInt3:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a direct or indirect call.
func (i Inst) IsCall() bool { return i.Op == OpCall || i.Op == OpCallInd }

// String renders the instruction in Intel-like syntax.
func (i Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%#08x: ", i.Addr)
	switch i.Op {
	case OpJcc:
		fmt.Fprintf(&b, "j%s %#x", i.Cond, i.Dst.Imm)
	case OpCall, OpJmp:
		fmt.Fprintf(&b, "%s %#x", i.Op, i.Dst.Imm)
	default:
		b.WriteString(i.Op.String())
		if i.Dst.Kind != KindNone {
			b.WriteByte(' ')
			b.WriteString(i.Dst.String())
		}
		if i.Src.Kind != KindNone {
			b.WriteString(", ")
			b.WriteString(i.Src.String())
		}
	}
	return b.String()
}
