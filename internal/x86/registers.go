// Package x86 implements a decoder for the subset of the x86-64
// instruction set that matters for static system-call identification:
// data movement, address formation, integer ALU operations, stack
// manipulation, control flow, and the syscall instruction itself.
//
// The decoder understands REX prefixes, ModRM/SIB addressing and
// RIP-relative operands, which is sufficient to disassemble the machine
// code produced by compilers around system call sites as well as the
// binaries synthesized by the corpus generator in this repository.
package x86

import "fmt"

// Reg identifies an x86-64 general-purpose register. The numeric values
// 0-15 follow the hardware encoding (RAX=0 ... R15=15) so that ModRM
// register fields map directly onto Reg values.
type Reg uint8

// General purpose registers in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// RIP is a pseudo-register used to mark RIP-relative memory
	// operands. It never appears as a direct register operand.
	RIP

	// RegNone marks an absent base or index register in a memory
	// operand.
	RegNone Reg = 0xFF
)

// NumGPR is the number of addressable general-purpose registers.
const NumGPR = 16

var regNames = [...]string{
	RAX: "rax", RCX: "rcx", RDX: "rdx", RBX: "rbx",
	RSP: "rsp", RBP: "rbp", RSI: "rsi", RDI: "rdi",
	R8: "r8", R9: "r9", R10: "r10", R11: "r11",
	R12: "r12", R13: "r13", R14: "r14", R15: "r15",
	RIP: "rip",
}

// String returns the conventional 64-bit name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) && regNames[r] != "" {
		return regNames[r]
	}
	if r == RegNone {
		return "none"
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Valid reports whether r names one of the 16 general-purpose registers.
func (r Reg) Valid() bool { return r < NumGPR }

// IsCallerSaved reports whether the System V AMD64 ABI allows a called
// function to clobber r. The symbolic executor uses this to havoc
// registers across skipped calls.
func (r Reg) IsCallerSaved() bool {
	switch r {
	case RAX, RCX, RDX, RSI, RDI, R8, R9, R10, R11:
		return true
	}
	return false
}

// ParamRegs lists the integer argument registers of the System V AMD64
// calling convention, in order.
var ParamRegs = [6]Reg{RDI, RSI, RDX, RCX, R8, R9}
