package bside

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// invarianceFixture writes a wrapper-heavy static binary — the shape
// whose identification units actually fan out across the intra-binary
// pool — plus the dynamic fixture binaries with a shared library (the
// stitch path).
func invarianceFixture(t *testing.T) []analyzerCase {
	t.Helper()
	dir := t.TempDir()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "invariance", Kind: elff.KindStatic,
		HotDirect: 14, HotWrapper: 5, HotStack: 2, Handlers: 3,
		ColdDirect: 9, ColdWrapper: 3, StackedTruth: 2,
		Filler: 35, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	staticPath := filepath.Join(dir, "invariance")
	mustWrite(t, bin, staticPath)

	dynPaths, libDir := batchFixture(t, 1)
	return []analyzerCase{
		{name: "static", path: staticPath},
		{name: "dynamic", path: dynPaths[0], libDir: libDir},
	}
}

type analyzerCase struct {
	name   string
	path   string
	libDir string
}

// phaseFingerprint reduces a PhaseReport to its comparable content.
type phaseFingerprint struct {
	Start  int
	Phases []Phase
}

// TestIntraWorkerInvariance is the worker-count invariance contract of
// the staged pipeline: the same binary analyzed at 1, 4 and 8
// intra-binary workers must yield identical syscall sets, identical
// phase partitions, and identical ordering everywhere.
func TestIntraWorkerInvariance(t *testing.T) {
	for _, tc := range invarianceFixture(t) {
		t.Run(tc.name, func(t *testing.T) {
			type outcome struct {
				syscalls []uint64
				names    []string
				imports  []string
				wrappers int
				failOpen bool
				phases   phaseFingerprint
				listing  string
			}
			var base *outcome
			for _, workers := range []int{1, 4, 8} {
				a := NewAnalyzer(Options{LibraryDir: tc.libDir, IntraWorkers: workers})
				res, err := a.AnalyzeFile(tc.path)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Timings == nil || res.Timings.Identify < 0 {
					t.Fatalf("workers=%d: missing stage timings", workers)
				}
				got := &outcome{
					syscalls: res.Syscalls,
					names:    res.Names(),
					imports:  res.Imports,
					wrappers: res.Wrappers,
					failOpen: res.FailOpen,
					listing:  res.Disassembly(),
				}
				pr, err := res.Phases(PhaseOptions{})
				if err != nil {
					t.Fatalf("workers=%d: phases: %v", workers, err)
				}
				got.phases = phaseFingerprint{Start: pr.Start, Phases: pr.Phases}
				if base == nil {
					base = got
					continue
				}
				if !reflect.DeepEqual(got.syscalls, base.syscalls) {
					t.Fatalf("workers=%d: syscalls drifted:\n%v\n%v", workers, got.syscalls, base.syscalls)
				}
				if !reflect.DeepEqual(got.names, base.names) || !reflect.DeepEqual(got.imports, base.imports) {
					t.Fatalf("workers=%d: names/imports drifted", workers)
				}
				if got.wrappers != base.wrappers || got.failOpen != base.failOpen {
					t.Fatalf("workers=%d: wrappers/fail-open drifted", workers)
				}
				if !reflect.DeepEqual(got.phases, base.phases) {
					t.Fatalf("workers=%d: phase partitions drifted", workers)
				}
				if got.listing != base.listing {
					t.Fatalf("workers=%d: disassembly ordering drifted", workers)
				}
			}
		})
	}
}

// TestAnalyzeTimeout: Options.Timeout in the past must fail the
// analysis with a budget-exhausted error instead of running unbounded.
func TestAnalyzeTimeout(t *testing.T) {
	cases := invarianceFixture(t)
	a := NewAnalyzer(Options{Timeout: time.Nanosecond})
	if _, err := a.AnalyzeFile(cases[0].path); err == nil {
		t.Fatal("expired deadline must fail the analysis")
	}
}
