package bside

import (
	"os"
	"path/filepath"
	"testing"

	"bside/internal/asm"
	"bside/internal/elff"
	"bside/internal/testbin"
	"bside/internal/x86"
)

// TestDlopenModules checks §4.5's runtime-module handling: modules
// named by the user are analyzed alongside the main binary and their
// exports' syscalls union into the result.
func TestDlopenModules(t *testing.T) {
	dir := t.TempDir()

	main, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	}, nil)
	mainPath := filepath.Join(dir, "main")
	mustWrite(t, main, mainPath)

	// A module exporting a handler that calls epoll_wait(232).
	module, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0500000000, func(b *asm.Builder) {
		b.Func("mod_handler")
		b.MovRegImm32(x86.RAX, 232)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "mod_handler", Addr: syms["mod_handler"]}}
	})
	modPath := filepath.Join(dir, "ngx_module.so")
	mustWrite(t, module, modPath)

	// Without the module: only exit.
	plain, err := NewAnalyzer(Options{}).AnalyzeFile(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Has(232) {
		t.Fatal("module syscall leaked into plain analysis")
	}

	// With the module: union includes epoll_wait.
	withMod, err := NewAnalyzer(Options{Modules: []string{modPath}}).AnalyzeFile(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	if !withMod.Has(232) || !withMod.Has(60) {
		t.Fatalf("module union: %v", withMod.Syscalls)
	}
	if withMod.FailOpen {
		t.Fatal("unexpected fail-open")
	}
}

// TestDlopenModuleWrapperFailsOpen: a module exporting a syscall
// wrapper cannot be bounded statically.
func TestDlopenModuleWrapperFailsOpen(t *testing.T) {
	dir := t.TempDir()
	main, _ := testbin.Build(t, elff.KindStatic, func(b *asm.Builder) {
		b.Func("_start")
		b.MovRegImm32(x86.RAX, 60)
		b.Syscall()
		b.Ret()
	}, nil)
	mainPath := filepath.Join(dir, "main")
	mustWrite(t, main, mainPath)

	module, _ := testbin.BuildAt(t, elff.KindShared, 0x7F0600000000, func(b *asm.Builder) {
		b.Func("do_raw_syscall")
		b.MovRegReg(x86.RAX, x86.RDI)
		b.Syscall()
		b.Ret()
	}, func(spec *elff.Spec, syms map[string]uint64) {
		spec.Exports = []elff.Export{{Name: "do_raw_syscall", Addr: syms["do_raw_syscall"]}}
	})
	modPath := filepath.Join(dir, "wrap_module.so")
	mustWrite(t, module, modPath)

	res, err := NewAnalyzer(Options{Modules: []string{modPath}}).AnalyzeFile(mainPath)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailOpen {
		t.Fatal("wrapper-exporting module must fail open")
	}
}

func mustWrite(t testing.TB, bin *elff.Binary, path string) {
	t.Helper()
	if err := bin.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
