package bside_test

// The warm-lookup benchmarks measure the three cache tiers answering
// the same question — "analysis for this image hash?" — a resident
// service or warm fleet sweep asks per binary. Loose opens and
// JSON-decodes an envelope per probe; Pack binary-searches a shared
// memory-mapped index and decodes a handful of varints; Memory returns
// the already-decoded value. ns/op and allocs/op across the three are
// the whole point of the pack tier, and allocs/op is gated by
// `make bench-check`.

import (
	"path/filepath"
	"testing"

	"bside"
	"bside/internal/cache"
	"bside/internal/corpus"
	"bside/internal/elff"
)

// warmLookupDir populates a fresh cache directory by fully analyzing
// one corpus binary into it, and returns the directory plus the image
// hash a deployment-time caller would hold.
func warmLookupDir(b *testing.B) (string, string) {
	b.Helper()
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "packbench", Kind: elff.KindStatic,
		HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
		ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
		Filler: 30, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	img, err := elff.Write(bin.Spec())
	if err != nil {
		b.Fatal(err)
	}
	dir := filepath.Join(b.TempDir(), "cache")
	analyzer, err := bside.NewAnalyzerErr(bside.Options{CacheDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := analyzer.AnalyzeBytes(img); err != nil {
		b.Fatal(err)
	}
	return dir, bin.Hash
}

func runWarmLookup(b *testing.B, a *bside.Analyzer, hash string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, ok := a.Lookup(hash)
		if !ok || !res.Cached {
			b.Fatal("warm lookup missed")
		}
	}
}

func BenchmarkWarmLookupLoose(b *testing.B) {
	dir, hash := warmLookupDir(b)
	a, err := bside.NewAnalyzerErr(bside.Options{CacheDir: dir, DisableMemoryTier: true})
	if err != nil {
		b.Fatal(err)
	}
	runWarmLookup(b, a, hash)
}

func BenchmarkWarmLookupPack(b *testing.B) {
	dir, hash := warmLookupDir(b)
	st, err := cache.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if cs, err := st.Compact(); err != nil {
		b.Fatal(err)
	} else if cs.Packed == 0 {
		b.Fatal("compaction packed nothing")
	}
	// A fresh analyzer discovers the pack; with the memory tier off,
	// every probe is a pack probe.
	a, err := bside.NewAnalyzerErr(bside.Options{CacheDir: dir, DisableMemoryTier: true})
	if err != nil {
		b.Fatal(err)
	}
	runWarmLookup(b, a, hash)
	b.StopTimer()
	if st := a.CacheStats(); st.PackHits == 0 {
		b.Fatalf("lookups did not hit the pack tier: %+v", st)
	}
}

func BenchmarkWarmLookupMemory(b *testing.B) {
	dir, hash := warmLookupDir(b)
	a, err := bside.NewAnalyzerErr(bside.Options{CacheDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := a.Lookup(hash); !ok { // promote into the memory tier
		b.Fatal("priming lookup missed")
	}
	runWarmLookup(b, a, hash)
	b.StopTimer()
	if st := a.CacheStats(); st.MemoryHits == 0 {
		b.Fatalf("lookups were not memory hits: %+v", st)
	}
}
