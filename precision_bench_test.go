package bside

import (
	"fmt"
	"path/filepath"
	"testing"

	"bside/internal/corpus"
	"bside/internal/elff"
)

// writePrecisionCorpus materializes the fixed table-driven corpus the
// precision metric is defined over: function-pointer tables in every
// section kind the provenance layer handles (anonymous data, .rodata,
// RELRO, writable .data), packed and aligned, with cold data-carried
// handlers and signature decoys for the signature layer to prune.
func writePrecisionCorpus(b testing.TB) []string {
	b.Helper()
	dir := b.TempDir()
	var paths []string
	for i, sec := range []string{"", "rodata", "relro", "data"} {
		for _, packed := range []bool{false, true} {
			name := fmt.Sprintf("prec-%d-packed-%v", i, packed)
			bin, err := corpus.BuildProgram(corpus.Profile{
				Name: name, Kind: elff.KindStatic,
				HotDirect: 4, Handlers: 2, TableHandlers: 3,
				ColdHandlers: 2, SigDecoys: 1,
				ColdDirect: 3, ColdWrapper: 1,
				TableSection: sec, TablePacked: packed,
				Filler: 16, Seed: int64(7000 + i),
			})
			if err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(dir, name)
			if err := bin.WriteFile(path); err != nil {
				b.Fatal(err)
			}
			paths = append(paths, path)
		}
	}
	return paths
}

// BenchmarkPrecisionCorpus measures the indirect-call resolver's
// effect as a gated number: the mean identified-set size over the
// fixed table-driven corpus, resolver on ("identified/op") and off
// ("fallback/op"). Both are deterministic — a function of the corpus
// and the analyzer, not the machine — so bench-check gates
// identified/op exactly like allocs/op: a rise means the resolver
// stopped shrinking sets. The shrink itself is asserted here too; the
// soundness direction (identified ⊇ truth) is the fuzzing oracle's
// job.
func BenchmarkPrecisionCorpus(b *testing.B) {
	paths := writePrecisionCorpus(b)
	var identified, fallback int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		identified, fallback = 0, 0
		on := NewAnalyzer(Options{})
		off := NewAnalyzer(Options{ResolverLayers: -1})
		for _, path := range paths {
			resOn, err := on.AnalyzeFile(path)
			if err != nil {
				b.Fatal(err)
			}
			resOff, err := off.AnalyzeFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if resOn.FailOpen || resOff.FailOpen {
				b.Fatalf("%s: fail-open on the precision corpus", path)
			}
			identified += len(resOn.Syscalls)
			fallback += len(resOff.Syscalls)
		}
		if identified >= fallback {
			b.Fatalf("resolver did not shrink the corpus: identified %d vs fallback %d",
				identified, fallback)
		}
	}
	b.ReportMetric(float64(identified)/float64(len(paths)), "identified/op")
	b.ReportMetric(float64(fallback)/float64(len(paths)), "fallback/op")
}
