package bside_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bside"
	"bside/internal/elff"
	"bside/internal/faults"
	"bside/internal/serve"
	"bside/internal/sweep"
)

// malformedCorpus returns the checked-in hostile images.
func malformedCorpus(t *testing.T) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("internal", "elff", "testdata", "malformed", "*.elf"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("malformed corpus unavailable: %v (%d entries)", err, len(paths))
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = data
	}
	return out
}

// tinyBinary writes a minimal valid static binary and returns its path
// and content hash.
func tinyBinary(t *testing.T, dir string, seed byte) (string, string) {
	t.Helper()
	data, err := elff.Write(elff.Spec{
		Kind:  elff.KindStatic,
		Base:  0x400000,
		Entry: 0x400000,
		Blob:  []byte{0x0f, 0x05, 0xc3, seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bin-"+string('a'+rune(seed%26)))
	if err := os.WriteFile(path, data, 0o755); err != nil {
		t.Fatal(err)
	}
	bin, err := elff.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	return path, bin.Hash
}

// TestMalformedCorpusAllEntryPaths is the acceptance criterion in one
// test: every corpus entry returns a structured error — no panic, no
// process exit — through the library path (AnalyzeBytes/AnalyzeFile),
// the service path (POST /analyze), and the fleet path (bside sweep).
func TestMalformedCorpusAllEntryPaths(t *testing.T) {
	corpus := malformedCorpus(t)
	a := bside.NewAnalyzer(bside.Options{})

	// Library path, bytes and file frontends both.
	dir := t.TempDir()
	for name, data := range corpus {
		if _, err := a.AnalyzeBytes(data); err == nil {
			t.Errorf("AnalyzeBytes(%s) accepted hostile image", name)
		} else if _, isPanic := bside.IsPanic(err); isPanic {
			t.Errorf("AnalyzeBytes(%s) panicked instead of rejecting: %v", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := a.AnalyzeFile(path); err == nil {
			t.Errorf("AnalyzeFile(%s) accepted hostile image", name)
		}
	}

	// Service path: every entry answers 4xx — client-side garbage — and
	// the daemon stays up throughout.
	srv := serve.New(serve.Config{Backend: bside.NewAnalyzer(bside.Options{})})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for name, data := range corpus {
		resp, err := http.Post(ts.URL+"/analyze", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: daemon died: %v", name, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s: status %d (%s), want 4xx", name, resp.StatusCode, body)
		}
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after corpus: %v", err)
	} else {
		resp.Body.Close()
	}

	// Fleet path: a tree holding the whole corpus plus one good binary.
	// The sweep finishes, analyzes the good one, and accounts for every
	// corpus file as a skip (foreign arch, not a candidate) or a phased
	// failure — never a crash.
	root := t.TempDir()
	for name, data := range corpus {
		if err := os.WriteFile(filepath.Join(root, name), data, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	goodPath, _ := tinyBinary(t, root, 9)
	var goodLine *sweep.Result
	sum, err := sweep.Run(context.Background(), root, sweep.Options{
		Analyzer: bside.NewAnalyzer(bside.Options{}),
		OnResult: func(r *sweep.Result) {
			if r.Path == goodPath {
				goodLine = r
			} else if r.Phase == "" {
				t.Errorf("%s: hostile file swept without a failure phase", r.Path)
			}
		},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sum.Analyzed != 1 || goodLine == nil || goodLine.Phase != "" {
		t.Fatalf("good binary not analyzed: analyzed=%d line=%+v", sum.Analyzed, goodLine)
	}
	if sum.Skipped+sum.Failed != int64(len(corpus)) {
		t.Fatalf("corpus accounting: skipped=%d failed=%d, want %d total", sum.Skipped, sum.Failed, len(corpus))
	}
}

// TestPanickedAnalysisIsNeverCached pins the cache-poisoning rule: a
// contained panic stores nothing, and once the fault clears the same
// image analyzes fresh and correctly.
func TestPanickedAnalysisIsNeverCached(t *testing.T) {
	dir := t.TempDir()
	cacheDir := t.TempDir()
	path, hash := tinyBinary(t, dir, 3)

	a, err := bside.NewAnalyzerErr(bside.Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: hash, Panic: true})
	_, aerr := a.AnalyzeFile(path)
	restore()
	pe, ok := bside.IsPanic(aerr)
	if !ok {
		t.Fatalf("expected contained panic, got %v", aerr)
	}
	if pe.Stage == "" || pe.Hash != hash {
		t.Errorf("panic context: stage=%q hash=%q", pe.Stage, pe.Hash)
	}
	if st := a.CacheStats(); st.Stores != 0 {
		t.Fatalf("panicked analysis stored %d cache entries", st.Stores)
	}

	res, err := a.AnalyzeFile(path)
	if err != nil {
		t.Fatalf("re-analysis after fault cleared: %v", err)
	}
	if res.Cached {
		t.Fatal("re-analysis served from cache — a panicked result was stored somewhere")
	}
}

// TestBatchPoisonIsolation: in one AnalyzeAll batch, the poisoned
// binary carries a PanicError in its slot and every other binary
// analyzes normally.
func TestBatchPoisonIsolation(t *testing.T) {
	dir := t.TempDir()
	poisonPath, poisonHash := tinyBinary(t, dir, 11)
	cleanPath, _ := tinyBinary(t, dir, 12)

	restore := faults.Activate(faults.Rule{Point: faults.Stage, Match: poisonHash, Panic: true})
	defer restore()

	a := bside.NewAnalyzer(bside.Options{})
	results, err := a.AnalyzeAll([]string{poisonPath, cleanPath}, bside.BatchOptions{Jobs: 2})
	if err != nil {
		t.Fatalf("batch-level error for a per-binary panic: %v", err)
	}
	if _, ok := bside.IsPanic(results[0].Err); !ok {
		t.Fatalf("poison slot: %+v", results[0])
	}
	if results[1].Err != nil {
		t.Fatalf("clean slot damaged by peer's panic: %+v", results[1])
	}
}

// TestErrMalformedClassification: the public sentinel matches every
// parse rejection, and does not match analysis failures.
func TestErrMalformedClassification(t *testing.T) {
	a := bside.NewAnalyzer(bside.Options{})
	_, err := a.AnalyzeBytes([]byte("not an elf at all"))
	if !errors.Is(err, bside.ErrMalformed) {
		t.Fatalf("garbage not classified bside.ErrMalformed: %v", err)
	}
	if !strings.Contains(err.Error(), "malformed") {
		t.Errorf("error message does not say malformed: %v", err)
	}
}
