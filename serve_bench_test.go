package bside_test

// BenchmarkServeWarmHash lives in the external test package: the serve
// frontend imports bside, so an in-package benchmark would be an import
// cycle. It measures the resident service's deployment-time fast path —
// a bare ?hash= lookup against a warm cache: no upload, no ELF parse,
// one cache read plus HTTP framing. Its allocs/op are gated by
// `make bench-check` alongside the whole-analysis benchmarks.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"bside"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/serve"
)

func BenchmarkServeWarmHash(b *testing.B) {
	bin, err := corpus.BuildProgram(corpus.Profile{
		Name: "servebench", Kind: elff.KindStatic,
		HotDirect: 12, HotWrapper: 4, HotStack: 2, Handlers: 2,
		ColdDirect: 8, ColdWrapper: 2, StackedTruth: 1,
		Filler: 30, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	img, err := elff.Write(bin.Spec())
	if err != nil {
		b.Fatal(err)
	}
	analyzer, err := bside.NewAnalyzerErr(bside.Options{
		CacheDir: filepath.Join(b.TempDir(), "cache"),
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := analyzer.AnalyzeBytes(img); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{Backend: analyzer}).Handler())
	defer ts.Close()
	url := ts.URL + "/analyze?hash=" + bin.Hash

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "text/plain", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		if resp.Header.Get("X-Bside-Cached") != "true" {
			b.Fatal("warm lookup not served from the cache")
		}
	}
}
