package bside_test

// Fleet-throughput benchmarks for the sweep harness (external test
// package: the root package cannot import internal/sweep, which
// imports it back). BenchmarkSweepTree is the distro-scan number the
// tentpole optimizations — mmap zero-copy image frontend, striped
// cache tiers — exist to move: binaries per second over a nested tree,
// cold and warm.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bside"
	"bside/internal/corpus"
	"bside/internal/elff"
	"bside/internal/sweep"
)

// sweepCorpusSize is the benchmark tree's binary count: big enough
// that per-binary variance averages out, small enough to keep CI
// bench smoke runs quick.
const sweepCorpusSize = 64

var sweepTree struct {
	once sync.Once
	root string
	err  error
}

// sweepBenchTree materializes the shared benchmark tree once per
// process: sweepCorpusSize static binaries across nested package
// directories, interleaved with the non-ELF noise a real tree carries.
func sweepBenchTree(b *testing.B) string {
	sweepTree.once.Do(func() {
		root, err := os.MkdirTemp("", "sweepbench")
		if err != nil {
			sweepTree.err = err
			return
		}
		for i := 0; i < sweepCorpusSize; i++ {
			bin, err := corpus.BuildProgram(corpus.Profile{
				Name: fmt.Sprintf("fleet%02d", i), Kind: elff.KindStatic,
				HotDirect: 10, HotWrapper: 3, HotStack: 2, Handlers: 1,
				ColdDirect: 6, ColdWrapper: 2, StackedTruth: 1,
				Filler: 24, Seed: int64(4000 + i),
			})
			if err != nil {
				sweepTree.err = err
				return
			}
			dir := filepath.Join(root, fmt.Sprintf("pkg%02d", i%8), "bin")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				sweepTree.err = err
				return
			}
			if err := bin.WriteFile(filepath.Join(dir, fmt.Sprintf("fleet%02d", i))); err != nil {
				sweepTree.err = err
				return
			}
			if i%8 == 0 {
				noise := filepath.Join(root, fmt.Sprintf("pkg%02d", i%8), "doc.txt")
				if err := os.WriteFile(noise, []byte("package docs\n"), 0o644); err != nil {
					sweepTree.err = err
					return
				}
			}
		}
		sweepTree.root = root
	})
	if sweepTree.err != nil {
		b.Fatal(sweepTree.err)
	}
	return sweepTree.root
}

// runSweepBench sweeps the shared tree once and asserts the fleet came
// through whole.
func runSweepBench(b *testing.B, cacheDir string, wantWarm bool) {
	b.Helper()
	a := bside.NewAnalyzer(bside.Options{CacheDir: cacheDir})
	sum, err := sweep.Run(context.Background(), sweepBenchTree(b), sweep.Options{Analyzer: a})
	if err != nil {
		b.Fatal(err)
	}
	if sum.Analyzed != sweepCorpusSize || sum.Failed != 0 {
		b.Fatalf("analyzed=%d failed=%d (phases=%v), want %d/0",
			sum.Analyzed, sum.Failed, sum.FailurePhases, sweepCorpusSize)
	}
	if wantWarm && sum.Warm != sum.Analyzed {
		b.Fatalf("warm=%d of %d", sum.Warm, sum.Analyzed)
	}
	if !wantWarm && sum.Warm != 0 {
		b.Fatalf("cold sweep served %d binaries warm", sum.Warm)
	}
}

// BenchmarkSweepTree/Cold is the first scan of a fleet: every binary
// walked, sniffed, mapped, analyzed and persisted.
// BenchmarkSweepTree/Warm is every scan after it: the same tree served
// from the content-addressed cache, which is the steady state of a
// nightly distro rescan. Both report binaries per second.
func BenchmarkSweepTree(b *testing.B) {
	sweepBenchTree(b)
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cacheDir := filepath.Join(b.TempDir(), fmt.Sprintf("cold%d", i))
			b.StartTimer()
			runSweepBench(b, cacheDir, false)
		}
		b.ReportMetric(float64(sweepCorpusSize*b.N)/b.Elapsed().Seconds(), "bin/s")
	})
	b.Run("Warm", func(b *testing.B) {
		cacheDir := filepath.Join(b.TempDir(), "warm")
		runSweepBench(b, cacheDir, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSweepBench(b, cacheDir, true)
		}
		b.ReportMetric(float64(sweepCorpusSize*b.N)/b.Elapsed().Seconds(), "bin/s")
	})
}
